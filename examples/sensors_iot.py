#!/usr/bin/env python3
"""IoT scenario: numeric sensor reports, secondary index, selective queries.

The Sensors dataset is where the vector-based format pays off most (paper
Figure 16c): records are arrays of tiny ``{"temp", "timestamp"}`` objects,
so per-object field names and offsets dominate the open format's footprint.
This example:

1. ingests sensor reports into open / closed / inferred datasets and prints
   the storage breakdown;
2. creates a secondary index on ``report_time`` and compares a selective
   range query through the index against a full-scan query (Figure 24's
   motivation);
3. runs the paper's Sensors Q2 and Q3 with and without the field-access
   consolidation/pushdown optimization (the Figure 23 ablation).

Run with::

    python examples/sensors_iot.py [record_count]
"""

import sys

from repro import Dataset, StorageFormat
from repro.datasets import sensors
from repro.query import QueryExecutor
from repro.types import Datatype


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    records = list(sensors.generate(count))

    print(f"== Storage: {count} sensor reports, {sensors.READINGS_PER_RECORD} readings each ==")
    datasets = {}
    for storage_format in (StorageFormat.OPEN, StorageFormat.CLOSED, StorageFormat.INFERRED):
        datatype = None
        if storage_format is StorageFormat.CLOSED:
            datatype = Datatype.from_example("SensorType", records[0], primary_key="id")
        dataset = Dataset.create(f"sensors_{storage_format.value}", storage_format, datatype=datatype)
        dataset.create_secondary_index("by_report_time", ("report_time",))
        dataset.insert_all(records)
        dataset.flush_all()
        datasets[storage_format] = dataset
        print(f"  {storage_format.value:10s} {dataset.storage_size():>12,} bytes")
    print()

    inferred = datasets[StorageFormat.INFERRED]

    print("== Secondary index: readings reported in the first hour ==")
    low = sensors.REPORT_TIME_BASE
    high = low + 60 * 60 * 1000
    hits = inferred.secondary_range_search("by_report_time", low, high)
    print(f"  matching reports: {len(hits)} of {count}")
    print()

    print("== Sensors Q2 / Q3, optimized vs un-optimized field access ==")
    # The queries run from their SQL++ text (sensors.SQLPP); the compiled
    # plans hit the same consolidation/pushdown rewrites as builder plans.
    optimized = QueryExecutor(cold_cache=True)
    unoptimized = QueryExecutor(consolidate_field_access=False,
                                pushdown_through_unnest=False, cold_cache=True)
    for name in ("Q2", "Q3"):
        fast = inferred.query(sensors.SQLPP[name], executor=optimized)
        slow = inferred.query(sensors.SQLPP[name], executor=unoptimized)
        assert fast.rows == slow.rows
        assert fast.rows == optimized.execute(inferred, sensors.QUERIES[name]()).rows
        print(f"  {name}: consolidated+pushdown {fast.stats.wall_seconds:6.3f}s   "
              f"un-optimized {slow.stats.wall_seconds:6.3f}s   rows={len(fast.rows)}")
    print()
    print("Q3 top sensors:", inferred.query(sensors.SQLPP["Q3"]).rows[:3])

    # Quiesce background LSM maintenance (no-op when running synchronously).
    for dataset in datasets.values():
        dataset.close()


if __name__ == "__main__":
    main()
