"""Unit tests for the type system (tags, value wrappers, declared datatypes)."""

import uuid

import pytest

from repro.errors import SchemaViolationError, TypeError_
from repro.types import (
    ADate,
    ADateTime,
    AMultiset,
    APoint,
    ATime,
    Datatype,
    FieldDeclaration,
    MISSING,
    Missing,
    TypeTag,
    deep_equals,
    open_only_primary_key,
    pack_fixed,
    type_tag_of,
    unpack_fixed,
)


class TestTypeTag:
    def test_fixed_lengths_are_positive(self):
        for tag in TypeTag:
            if tag.is_fixed_length:
                assert tag.fixed_length > 0

    def test_nested_tags(self):
        assert TypeTag.OBJECT.is_nested
        assert TypeTag.ARRAY.is_collection
        assert TypeTag.MULTISET.is_collection
        assert not TypeTag.STRING.is_nested

    def test_string_is_variable_length(self):
        assert TypeTag.STRING.is_variable_length
        assert not TypeTag.STRING.is_fixed_length
        assert TypeTag.STRING.fixed_length is None

    def test_eov_is_control(self):
        assert TypeTag.EOV.is_control
        assert not TypeTag.INT64.is_control


class TestTypeTagOf:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, TypeTag.BOOLEAN),
            (7, TypeTag.INT64),
            (3.5, TypeTag.DOUBLE),
            ("hi", TypeTag.STRING),
            (b"\x00", TypeTag.BINARY),
            (None, TypeTag.NULL),
            ({}, TypeTag.OBJECT),
            ([], TypeTag.ARRAY),
            (AMultiset([1]), TypeTag.MULTISET),
            (ADate.from_iso("2018-09-20"), TypeTag.DATE),
            (ATime(12), TypeTag.TIME),
            (ADateTime(1556496000000), TypeTag.DATETIME),
            (APoint(24.0, -56.12), TypeTag.POINT),
            (uuid.uuid4(), TypeTag.UUID),
            (MISSING, TypeTag.MISSING),
        ],
    )
    def test_mapping(self, value, expected):
        assert type_tag_of(value) is expected

    def test_bool_is_not_int(self):
        assert type_tag_of(True) is TypeTag.BOOLEAN
        assert type_tag_of(1) is TypeTag.INT64

    def test_unmappable_value_raises(self):
        with pytest.raises(TypeError_):
            type_tag_of(object())


class TestPackUnpackFixed:
    @pytest.mark.parametrize(
        "tag,value",
        [
            (TypeTag.BOOLEAN, True),
            (TypeTag.INT32, -12345),
            (TypeTag.INT64, 2**40),
            (TypeTag.DOUBLE, -1.25),
            (TypeTag.DATE, ADate.from_iso("2018-09-20")),
            (TypeTag.DATETIME, ADateTime(1556496000000)),
            (TypeTag.TIME, ATime(456)),
            (TypeTag.POINT, APoint(24.0, -56.12)),
        ],
    )
    def test_roundtrip(self, tag, value):
        packed = pack_fixed(tag, value)
        assert len(packed) == tag.fixed_length
        assert unpack_fixed(tag, packed) == value

    def test_uuid_roundtrip(self):
        value = uuid.uuid4()
        packed = pack_fixed(TypeTag.UUID, value)
        assert unpack_fixed(TypeTag.UUID, packed) == value

    def test_pack_variable_tag_rejected(self):
        with pytest.raises(TypeError_):
            pack_fixed(TypeTag.STRING, "oops")


class TestValueWrappers:
    def test_adate_iso_roundtrip(self):
        date = ADate.from_iso("2018-09-20")
        assert date.to_date().isoformat() == "2018-09-20"

    def test_missing_is_singleton_and_falsey(self):
        assert Missing() is MISSING
        assert not MISSING

    def test_multiset_iteration_and_len(self):
        bag = AMultiset([1, 2, 2])
        assert len(bag) == 3
        assert sorted(bag) == [1, 2, 2]


class TestDeepEquals:
    def test_multiset_order_insensitive(self):
        assert deep_equals(AMultiset([1, 2, 3]), AMultiset([3, 1, 2]))
        assert not deep_equals(AMultiset([1, 2]), AMultiset([1, 1]))

    def test_nested_structures(self):
        left = {"a": [1, {"b": 2.0}], "c": "x"}
        right = {"a": [1, {"b": 2.0}], "c": "x"}
        assert deep_equals(left, right)
        right["a"][1]["b"] = 3.0
        assert not deep_equals(left, right)

    def test_list_length_mismatch(self):
        assert not deep_equals([1, 2], [1, 2, 3])


class TestDatatype:
    def _employee_type(self):
        dependent = Datatype.closed_type(
            "DependentType",
            [
                FieldDeclaration("name", TypeTag.STRING),
                FieldDeclaration("age", TypeTag.INT64),
            ],
        )
        return Datatype.open_type(
            "EmployeeType",
            [
                FieldDeclaration("id", TypeTag.INT64),
                FieldDeclaration("name", TypeTag.STRING),
                FieldDeclaration("dependents", TypeTag.MULTISET, optional=True,
                                 item_type=TypeTag.OBJECT, item_nested=dependent),
            ],
        )

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(TypeError_):
            Datatype.open_type("T", [
                FieldDeclaration("a", TypeTag.INT64),
                FieldDeclaration("a", TypeTag.STRING),
            ])

    def test_index_and_lookup(self):
        datatype = self._employee_type()
        assert datatype.index_of("name") == 1
        assert datatype.index_of("unknown") is None
        assert datatype.is_declared("dependents")
        assert datatype.declaration_of("id").type_tag is TypeTag.INT64

    def test_open_type_allows_undeclared_fields(self):
        datatype = self._employee_type()
        datatype.validate({"id": 1, "name": "Ann", "age": 26})

    def test_closed_type_rejects_undeclared_fields(self):
        closed = Datatype.closed_type("T", [FieldDeclaration("id", TypeTag.INT64)])
        with pytest.raises(SchemaViolationError):
            closed.validate({"id": 1, "extra": True})

    def test_missing_required_field_rejected(self):
        datatype = self._employee_type()
        with pytest.raises(SchemaViolationError):
            datatype.validate({"name": "Ann"})

    def test_wrong_type_rejected(self):
        datatype = self._employee_type()
        with pytest.raises(SchemaViolationError):
            datatype.validate({"id": "not-an-int", "name": "Ann"})

    def test_nested_item_validation(self):
        datatype = self._employee_type()
        datatype.validate({
            "id": 1,
            "name": "Ann",
            "dependents": AMultiset([{"name": "Bob", "age": 6}]),
        })
        with pytest.raises(SchemaViolationError):
            datatype.validate({
                "id": 1,
                "name": "Ann",
                "dependents": AMultiset([{"name": "Bob", "age": "six"}]),
            })

    def test_optional_field_may_be_absent(self):
        datatype = self._employee_type()
        datatype.validate({"id": 2, "name": "Sam"})

    def test_numeric_widening_allowed(self):
        datatype = Datatype.closed_type("T", [FieldDeclaration("v", TypeTag.DOUBLE)])
        datatype.validate({"v": 3})

    def test_from_example_builds_declarations(self):
        record = {
            "id": 1,
            "name": "Ann",
            "score": 3.5,
            "tags": ["a", "b"],
            "address": {"city": "Irvine", "zip": 92697},
        }
        datatype = Datatype.from_example("TweetType", record, primary_key="id")
        assert datatype.index_of("id") == 0
        assert datatype.declaration_of("address").nested is not None
        assert datatype.declaration_of("tags").item_type is TypeTag.STRING
        datatype.validate(record)

    def test_open_only_primary_key(self):
        datatype = open_only_primary_key("EmployeeType")
        assert datatype.declared_names == ["id"]
        assert datatype.is_open
        datatype.validate({"id": 3, "anything": {"nested": True}})
