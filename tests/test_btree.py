"""Unit tests for the page-based B+-tree (bulk load + reads)."""

import random

import pytest

from repro.btree import BTree, BulkLoader, LeafEntry, decode_key, encode_key
from repro.errors import EncodingError, StorageError
from repro.storage import BufferCache, InMemoryFileManager, SimulatedStorageDevice

PAGE_SIZE = 512


def _cache(page_size=PAGE_SIZE, capacity=256):
    device = SimulatedStorageDevice()
    manager = InMemoryFileManager(device, page_size)
    return device, BufferCache(manager, capacity)


def _build(entries, page_size=PAGE_SIZE):
    device, cache = _cache(page_size)
    cache.file_manager.create_file("tree")
    info = BulkLoader(cache, "tree").build(entries)
    return BTree(cache, "tree", info), device


class TestKeyCodec:
    @pytest.mark.parametrize("key", [0, -5, 2**40, 3.25, "abc", ("a", 1), (1, 2.5, "x")])
    def test_roundtrip(self, key):
        payload = encode_key(key)
        decoded, consumed = decode_key(payload)
        assert decoded == key
        assert consumed == len(payload)

    def test_bool_rejected(self):
        with pytest.raises(EncodingError):
            encode_key(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(EncodingError):
            encode_key({"not": "a key"})


class TestBulkLoadAndSearch:
    def test_point_lookup_small(self):
        entries = [LeafEntry(i, f"value-{i}".encode()) for i in range(10)]
        tree, _ = _build(entries)
        assert tree.search(3).value == b"value-3"
        assert tree.search(99) is None

    def test_point_lookup_multi_level(self):
        entries = [LeafEntry(i, bytes(20)) for i in range(2000)]
        tree, _ = _build(entries)
        assert tree.info.page_count > tree.info.leaf_count > 1
        for key in (0, 1, 999, 1500, 1999):
            assert tree.search(key) is not None
        assert tree.search(2000) is None
        assert tree.search(-1) is None

    def test_string_keys(self):
        entries = [LeafEntry(f"k{i:04d}", str(i).encode()) for i in range(300)]
        tree, _ = _build(entries)
        assert tree.search("k0123").value == b"123"
        assert tree.search("nope") is None

    def test_empty_tree(self):
        tree, _ = _build([])
        assert tree.info.is_empty
        assert tree.search(1) is None
        assert list(tree.scan_all()) == []
        assert list(tree.range_scan(0, 10)) == []

    def test_unsorted_input_rejected(self):
        device, cache = _cache()
        cache.file_manager.create_file("tree")
        loader = BulkLoader(cache, "tree")
        with pytest.raises(StorageError):
            loader.build([LeafEntry(2, b"a"), LeafEntry(1, b"b")])

    def test_duplicate_keys_rejected(self):
        device, cache = _cache()
        cache.file_manager.create_file("tree")
        loader = BulkLoader(cache, "tree")
        with pytest.raises(StorageError):
            loader.build([LeafEntry(1, b"a"), LeafEntry(1, b"b")])

    def test_oversized_record_rejected(self):
        device, cache = _cache()
        cache.file_manager.create_file("tree")
        loader = BulkLoader(cache, "tree")
        with pytest.raises(StorageError):
            loader.build([LeafEntry(1, bytes(PAGE_SIZE))])

    def test_antimatter_flag_roundtrip(self):
        entries = [LeafEntry(1, b"", is_antimatter=True), LeafEntry(2, b"live")]
        tree, _ = _build(entries)
        assert tree.search(1).is_antimatter
        assert not tree.search(2).is_antimatter


class TestScans:
    def test_scan_all_in_order(self):
        keys = list(range(0, 1000, 3))
        entries = [LeafEntry(key, bytes(10)) for key in keys]
        tree, _ = _build(entries)
        assert [entry.key for entry in tree.scan_all()] == keys

    def test_range_scan_inclusive(self):
        entries = [LeafEntry(i, bytes(8)) for i in range(500)]
        tree, _ = _build(entries)
        assert [e.key for e in tree.range_scan(100, 110)] == list(range(100, 111))

    def test_range_scan_exclusive_bounds(self):
        entries = [LeafEntry(i, bytes(8)) for i in range(50)]
        tree, _ = _build(entries)
        result = [e.key for e in tree.range_scan(10, 20, include_low=False, include_high=False)]
        assert result == list(range(11, 20))

    def test_range_scan_open_ended(self):
        entries = [LeafEntry(i, bytes(8)) for i in range(100)]
        tree, _ = _build(entries)
        assert [e.key for e in tree.range_scan(None, 5)] == list(range(0, 6))
        assert [e.key for e in tree.range_scan(95, None)] == list(range(95, 100))

    def test_range_scan_between_keys(self):
        entries = [LeafEntry(i * 10, bytes(8)) for i in range(20)]
        tree, _ = _build(entries)
        assert [e.key for e in tree.range_scan(15, 35)] == [20, 30]

    def test_range_scan_selectivity_reads_fewer_pages(self):
        """A selective range query should read far fewer pages than a full scan."""
        entries = [LeafEntry(i, bytes(40)) for i in range(5000)]

        tree, device = _build(entries)
        tree.buffer_cache.clear()
        before = device.snapshot()
        list(tree.range_scan(100, 120))
        selective = device.stats.diff(before).bytes_read

        tree.buffer_cache.clear()
        before = device.snapshot()
        list(tree.scan_all())
        full = device.stats.diff(before).bytes_read
        assert selective < full / 5

    def test_random_workload_against_dict_oracle(self):
        rng = random.Random(42)
        keys = sorted(rng.sample(range(100000), 800))
        oracle = {key: str(key).encode() for key in keys}
        entries = [LeafEntry(key, oracle[key]) for key in keys]
        tree, _ = _build(entries, page_size=1024)
        for probe in rng.sample(range(100000), 200):
            expected = oracle.get(probe)
            found = tree.search(probe)
            assert (found.value if found else None) == expected
        low, high = sorted(rng.sample(range(100000), 2))
        assert [e.key for e in tree.range_scan(low, high)] == [k for k in keys if low <= k <= high]
