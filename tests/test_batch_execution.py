"""Vectorized batch execution: batch-vs-row parity, fallback, regressions.

The batch pipeline (``ExecutionMode.BATCH``, the default) must be an invisible
optimization: every query returns exactly the rows the row pipeline returns,
across storage formats, compression, partitioning, and batch sizes — and when
the batch planner cannot vectorize a plan it must fall back to row execution
transparently, recording the reason in ``ExecutionStats``.

Also hosts the regression tests for the three row-pipeline correctness fixes
that shipped with the batch work: mixed-type ORDER BY, pushed-down UNNEST
over scalar collections (SQL++ singleton semantics), and group-by keys
returning their original (unhashable) values.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, DeviceKind, StorageEnvironment, StorageFormat
from repro.errors import QueryError
from repro.query import (
    Comparison,
    DEFAULT_BATCH_SIZE,
    ExecutionMode,
    Exists,
    Func,
    QueryExecutor,
    Var,
    explain,
    field,
    lit,
    scan,
)
from repro.types import Datatype
from repro.vector import BatchExtractor, VectorEncoder, VectorRecordView, WILDCARD

RECORDS = [
    {
        "id": i,
        "user": {"name": f"user{i % 10}", "verified": i % 4 == 0},
        "text": "x" * (10 + i % 20),
        "timestamp_ms": 1_000_000 + (i * 37) % 1000,
        "entities": {"hashtags": [{"text": "jobs" if i % 5 == 0 else f"tag{i % 7}", "pos": 0}]},
        "readings": [{"temp": float(i % 50), "ts": i}, {"temp": float((i * 3) % 50), "ts": i + 1}],
    }
    for i in range(150)
]


def _dataset(storage_format=StorageFormat.INFERRED, partitions=1, compression=None,
             records=RECORDS, name="batch_tweets", flush=True):
    datatype = None
    if storage_format is StorageFormat.CLOSED:
        datatype = Datatype.from_records("BatchClosedType", list(records),
                                         is_open=True, primary_key="id")
    dataset = Dataset.create(
        name, storage_format, datatype=datatype, partitions=partitions,
        environment=StorageEnvironment.for_device(DeviceKind.NVME_SSD,
                                                  compression=compression,
                                                  page_size=4096))
    dataset.insert_all(records)
    if flush:
        dataset.flush_all()
    return dataset


@pytest.fixture(scope="module")
def inferred_dataset():
    return _dataset()


@pytest.fixture(scope="module")
def partitioned_dataset():
    return _dataset(partitions=4, name="batch_tweets_p4")


# Queries that the batch planner accepts (no UNNEST-item Var uses, ≤1 UNNEST,
# all of them pushed down) — the parity gauntlet.
def _q_count():
    return scan("t").count_star().build()


def _q_group_avg():
    return (scan("t")
            .group_by(("name", field("t", "user", "name")))
            .aggregate("avg_len", "avg", Func("length", field("t", "text")))
            .order_by("avg_len", descending=True)
            .build())


def _q_exists_filter():
    predicate = Comparison("=", field("ht", "text"), lit("jobs"))
    return (scan("t")
            .where(Exists(field("t", "entities", "hashtags"), "ht", predicate))
            .group_by(("name", field("t", "user", "name")))
            .count_star()
            .build())


def _q_order_project():
    return (scan("t")
            .select(("id", field("t", "id")), ("ts", field("t", "timestamp_ms")))
            .order_by(field("t", "timestamp_ms"))
            .limit(25)
            .build())


def _q_select_star():
    return scan("t").select_record().order_by(field("t", "id")).limit(10).build()


def _q_let_where():
    return (scan("t")
            .let("length", Func("length", field("t", "text")))
            .where(Comparison(">", Var("length"), lit(20)))
            .select(("id", field("t", "id")), ("length", Var("length")))
            .build())


def _q_unnest_pushdown():
    return (scan("t")
            .unnest(field("t", "readings"), "r")
            .group_by(("id", field("t", "id")))
            .aggregate("max_temp", "max", field("r", "temp"))
            .build())


PARITY_QUERIES = {
    "count_star": _q_count,
    "group_avg": _q_group_avg,
    "exists_filter": _q_exists_filter,
    "order_project": _q_order_project,
    "select_star": _q_select_star,
    "let_where": _q_let_where,
    "unnest_pushdown": _q_unnest_pushdown,
}


def _run(dataset, spec, mode, **options):
    return QueryExecutor(execution_mode=mode, **options).execute(dataset, spec)


def _assert_parity(dataset, make_spec, **options):
    batch = _run(dataset, make_spec(), ExecutionMode.BATCH, **options)
    row = _run(dataset, make_spec(), ExecutionMode.ROW, **options)
    assert row.stats.execution_mode == "row"
    assert batch.rows == row.rows
    return batch, row


class TestBatchRowParity:
    @pytest.mark.parametrize("query_name", sorted(PARITY_QUERIES))
    @pytest.mark.parametrize("storage_format", [StorageFormat.OPEN, StorageFormat.CLOSED,
                                                StorageFormat.INFERRED, StorageFormat.SL_VB])
    def test_parity_across_formats(self, storage_format, query_name):
        dataset = _dataset(storage_format, name=f"batch_{storage_format.value}")
        batch, _ = _assert_parity(dataset, PARITY_QUERIES[query_name])
        if storage_format.uses_vector_format:
            assert batch.stats.execution_mode == "batch"
        else:
            # ADM formats never consolidate field accesses, so batch planning
            # must decline them with a reason rather than crash or mis-run.
            assert batch.stats.execution_mode == "row"
            assert batch.stats.fallback_reason is not None

    @pytest.mark.parametrize("query_name", sorted(PARITY_QUERIES))
    def test_parity_compressed(self, query_name):
        dataset = _dataset(compression="snappy", name="batch_snappy")
        _assert_parity(dataset, PARITY_QUERIES[query_name])

    @pytest.mark.parametrize("query_name", sorted(PARITY_QUERIES))
    def test_parity_multi_partition(self, partitioned_dataset, query_name):
        _assert_parity(partitioned_dataset, PARITY_QUERIES[query_name])

    @pytest.mark.parametrize("query_name", sorted(PARITY_QUERIES))
    def test_parity_multi_partition_inline(self, partitioned_dataset, query_name):
        _assert_parity(partitioned_dataset, PARITY_QUERIES[query_name], parallelism=1)

    @pytest.mark.parametrize("query_name", sorted(PARITY_QUERIES))
    def test_parity_batch_size_one(self, inferred_dataset, query_name):
        """Size-1 batches stress every chunk boundary; results must not change."""
        batch = _run(inferred_dataset, PARITY_QUERIES[query_name](),
                     ExecutionMode.BATCH, batch_size=1)
        row = _run(inferred_dataset, PARITY_QUERIES[query_name](), ExecutionMode.ROW)
        assert batch.rows == row.rows

    def test_parity_unflushed_memtable(self):
        dataset = _dataset(name="batch_memtable", flush=False)
        for make_spec in PARITY_QUERIES.values():
            _assert_parity(dataset, make_spec)

    def test_batch_stats_reported(self, inferred_dataset, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        result = _run(inferred_dataset, _q_group_avg(), ExecutionMode.BATCH)
        assert result.stats.execution_mode == "batch"
        assert result.stats.batch_size == DEFAULT_BATCH_SIZE
        assert result.stats.fallback_reason is None
        assert result.stats.batches_processed >= 1

    def test_batch_size_one_batch_count(self, inferred_dataset):
        result = _run(inferred_dataset, _q_group_avg(), ExecutionMode.BATCH, batch_size=1)
        assert result.stats.batches_processed == len(RECORDS)


class TestFallback:
    def test_unnest_item_var_falls_back(self, inferred_dataset):
        """Direct Var uses of the unnested item defeat pushdown → row mode."""
        spec = (scan("t")
                .unnest(field("t", "readings"), "r")
                .where(Comparison("=", Func("is_array", Var("r")), lit(True)))
                .count_star()
                .build())
        batch = _run(inferred_dataset, spec, ExecutionMode.BATCH)
        row = _run(inferred_dataset, spec, ExecutionMode.ROW)
        assert batch.stats.execution_mode == "row"
        assert batch.stats.fallback_reason is not None
        assert batch.rows == row.rows

    def test_multiple_unnests_fall_back(self, inferred_dataset):
        spec = (scan("t")
                .unnest(field("t", "readings"), "r")
                .unnest(field("t", "entities", "hashtags"), "ht")
                .count_star()
                .build())
        batch = _run(inferred_dataset, spec, ExecutionMode.BATCH)
        row = _run(inferred_dataset, spec, ExecutionMode.ROW)
        assert batch.stats.execution_mode == "row"
        assert batch.rows == row.rows

    def test_explicit_row_mode(self, inferred_dataset):
        result = _run(inferred_dataset, _q_count(), ExecutionMode.ROW)
        assert result.stats.execution_mode == "row"
        assert result.stats.batches_processed == 0

    def test_batch_size_zero_disables(self, inferred_dataset):
        result = _run(inferred_dataset, _q_count(), ExecutionMode.BATCH, batch_size=0)
        assert result.stats.execution_mode == "row"
        assert "batch size 0" in result.stats.fallback_reason

    def test_consolidation_disabled_falls_back(self, inferred_dataset):
        executor = QueryExecutor(consolidate_field_access=False,
                                 execution_mode=ExecutionMode.BATCH)
        result = executor.execute(inferred_dataset, _q_group_avg())
        assert result.stats.execution_mode == "row"
        assert result.stats.fallback_reason is not None

    def test_mode_env_var(self, inferred_dataset, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION_MODE", "row")
        result = QueryExecutor().execute(inferred_dataset, _q_group_avg())
        assert result.stats.execution_mode == "row"
        monkeypatch.setenv("REPRO_EXECUTION_MODE", "batch")
        result = QueryExecutor().execute(inferred_dataset, _q_group_avg())
        assert result.stats.execution_mode == "batch"

    def test_batch_size_env_var(self, inferred_dataset, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "7")
        result = QueryExecutor(execution_mode=ExecutionMode.BATCH).execute(
            inferred_dataset, _q_group_avg())
        assert result.stats.batch_size == 7
        assert result.stats.batches_processed == -(-len(RECORDS) // 7)

    def test_invalid_mode_and_size_rejected(self, inferred_dataset, monkeypatch):
        with pytest.raises(QueryError):
            _run(inferred_dataset, _q_count(), "columnar")
        with pytest.raises(QueryError):
            _run(inferred_dataset, _q_count(), ExecutionMode.BATCH, batch_size=-1)
        monkeypatch.setenv("REPRO_BATCH_SIZE", "lots")
        with pytest.raises(QueryError):
            QueryExecutor().execute(inferred_dataset, _q_count())


class TestExplainIntegration:
    def test_explain_shows_batch_mode(self, inferred_dataset):
        rendered = explain(inferred_dataset, _q_group_avg(), analyze=True,
                           execution_mode="batch", batch_size=DEFAULT_BATCH_SIZE)
        assert f"execution mode: batch (size={DEFAULT_BATCH_SIZE})" in rendered
        assert "mode=batch" in rendered
        assert "batch(es)" in rendered

    def test_explain_shows_fallback(self, inferred_dataset):
        spec = (scan("t")
                .unnest(field("t", "readings"), "r")
                .where(Comparison("=", Func("is_array", Var("r")), lit(True)))
                .count_star()
                .build())
        rendered = explain(inferred_dataset, spec, analyze=True,
                           execution_mode="batch")
        assert "execution mode: row (batch fallback:" in rendered
        assert "mode=row" in rendered


# ---------------------------------------------------------------------------
# row-pipeline correctness regressions (fixed alongside the batch work)
# ---------------------------------------------------------------------------

class TestRegressions:
    def test_mixed_type_order_by(self):
        """ORDER BY over a column mixing ints, strings, bools, lists and
        absent values used to raise TypeError from Python's sort."""
        records = [
            {"id": 0, "v": 3},
            {"id": 1, "v": "x"},
            {"id": 2},
            {"id": 3, "v": True},
            {"id": 4, "v": [1, 2]},
            {"id": 5, "v": None},
            {"id": 6, "v": 2.5},
            {"id": 7, "v": "a"},
        ]
        dataset = _dataset(records=records, name="batch_mixed_order")
        spec = (scan("t")
                .select(("id", field("t", "id")), ("v", field("t", "v")))
                .order_by(field("t", "v"))
                .build())
        batch = _run(dataset, spec, ExecutionMode.BATCH)
        row = _run(dataset, spec, ExecutionMode.ROW)
        assert batch.rows == row.rows
        ids = [r["id"] for r in row.rows]
        # Type-ranked groups, each internally sorted; absent values sort last.
        assert ids.index(3) < ids.index(6)          # bool before numbers
        assert ids.index(6) < ids.index(0)          # 2.5 < 3
        assert ids.index(7) < ids.index(1)          # "a" < "x"
        assert ids.index(1) < ids.index(4)          # strings before lists
        assert ids.index(4) < ids.index(2)          # missing sorts last

    @pytest.mark.parametrize("flush", [True, False])
    def test_scalar_collection_unnest_parity(self, flush):
        """UNNEST of a sometimes-scalar field follows SQL++ singleton
        semantics identically with and without pushdown, flushed or not."""
        records = [
            {"id": 0, "tags": ["a", "b"]},
            {"id": 1, "tags": "solo"},          # scalar → singleton collection
            {"id": 2, "tags": []},
            {"id": 3},                           # absent → no rows
            {"id": 4, "tags": ["a"]},
        ]
        dataset = _dataset(records=records, name=f"batch_scalar_unnest_{flush}",
                           flush=flush)
        spec = (scan("t")
                .unnest(field("t", "tags"), "tag")
                .group_by(("id", field("t", "id")))
                .count_star("n")
                .build())
        pushed = QueryExecutor(pushdown_through_unnest=True).execute(dataset, spec)
        unpushed = QueryExecutor(pushdown_through_unnest=False).execute(dataset, spec)
        expected = {0: 2, 1: 1, 4: 1}
        assert {r["id"]: r["n"] for r in pushed.rows} == expected
        assert sorted(pushed.rows, key=lambda r: r["id"]) == \
            sorted(unpushed.rows, key=lambda r: r["id"])
        batch = _run(dataset, spec, ExecutionMode.BATCH)
        assert sorted(batch.rows, key=lambda r: r["id"]) == \
            sorted(pushed.rows, key=lambda r: r["id"])

    def test_group_by_returns_original_key_values(self):
        """Grouping on list/object-valued keys must emit the first-seen
        original value, not the internal hashable tuple."""
        records = [
            {"id": 0, "k": [1, 2]},
            {"id": 1, "k": [1, 2]},
            {"id": 2, "k": {"a": 1}},
            {"id": 3, "k": {"a": 1}},
            {"id": 4, "k": "plain"},
        ]
        dataset = _dataset(records=records, name="batch_group_keys")
        spec = (scan("t")
                .group_by(("k", field("t", "k")))
                .count_star("n")
                .build())
        for mode in (ExecutionMode.BATCH, ExecutionMode.ROW):
            result = _run(dataset, spec, mode)
            by_count = {repr(r["k"]): r["n"] for r in result.rows}
            assert by_count == {"[1, 2]": 2, "{'a': 1}": 2, "'plain'": 1}
            kinds = {type(r["k"]) for r in result.rows}
            assert kinds == {list, dict, str}


# ---------------------------------------------------------------------------
# property-based parity
# ---------------------------------------------------------------------------

_field_names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=10)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=16),
)


def _values(depth=2):
    if depth == 0:
        return _scalars
    children = _values(depth - 1)
    return st.one_of(_scalars,
                     st.lists(children, max_size=3),
                     st.dictionaries(_field_names, children, max_size=3))


_records = st.dictionaries(_field_names, _values(2), max_size=5)


def _paths_of(value, prefix=(), wild_used=False):
    """Single-wildcard paths reachable in a record (extractor test requests)."""
    paths = []
    if isinstance(value, dict):
        for key, child in value.items():
            paths.append(prefix + (key,))
            paths.extend(_paths_of(child, prefix + (key,), wild_used))
    elif isinstance(value, list) and not wild_used:
        paths.append(prefix + (WILDCARD,))
        for item in value[:2]:
            paths.extend(_paths_of(item, prefix + (WILDCARD,), True))
    return paths


_prop_settings = settings(max_examples=40, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])
_engine_settings = settings(max_examples=12, deadline=None,
                            suppress_health_check=[HealthCheck.too_slow])


class TestBatchProperties:
    @_prop_settings
    @given(record=_records)
    def test_extractor_matches_get_values(self, record):
        """BatchExtractor's trie walk must equal per-path get_values."""
        payload = VectorEncoder(None).encode(record)
        view = VectorRecordView(payload)
        paths = list(dict.fromkeys(_paths_of(record)))[:24]
        paths.append(("definitely_not_a_field",))
        extractor = BatchExtractor(paths)
        assert extractor.extract(view) == view.get_values(*paths)

    @_engine_settings
    @given(records=st.lists(_records, min_size=1, max_size=12))
    def test_engine_parity_on_random_records(self, records):
        """Batch and row modes agree on random documents end to end."""
        records = [dict(record, id=index) for index, record in enumerate(records)]
        dataset = _dataset(records=records, name="batch_prop")
        queries = [
            scan("t").count_star().build,
            lambda: scan("t").select_record().order_by(field("t", "id")).build(),
            lambda: (scan("t")
                     .group_by(("k", field("t", "k")))
                     .aggregate("n", "count", field("t", "id"))
                     .build()),
        ]
        for make_spec in queries:
            batch = _run(dataset, make_spec(), ExecutionMode.BATCH)
            row = _run(dataset, make_spec(), ExecutionMode.ROW)
            assert batch.rows == row.rows
