"""Tier-1 suite hooks: opt-in dynamic lock-order tracking.

With ``REPRO_LOCKTRACK=1`` in the environment, every engine lock created
while the tests run is wrapped by :mod:`repro.analysis.locktrack`; after
the session the accumulated acquisition graph is checked for cycles and
lock-hierarchy violations, and any finding fails the run (exit status 3)
even when every individual test passed.  CI runs one tier-1 leg this way.
"""

from repro.analysis import locktrack

_installed = False


def pytest_configure(config):
    global _installed
    if locktrack.locktrack_enabled():
        locktrack.install()
        _installed = True


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _installed:
        return
    tracker = locktrack.get_tracker()
    if tracker is None:
        return
    terminalreporter.write_line(tracker.report())


def pytest_sessionfinish(session, exitstatus):
    if not _installed:
        return
    tracker = locktrack.get_tracker()
    if tracker is None:
        return
    problems = tracker.problems()
    if problems and exitstatus == 0:
        session.exitstatus = 3
