"""Lexer and parser tests for the SQL++ front-end.

Covers token positions, the AST shapes of the dialect's constructs, the
canonical unparser, and — most importantly for usability — that malformed
queries raise :class:`SqlppError` with accurate line/column/token info.
"""

import pytest

from repro.errors import SqlppError
from repro.sqlpp import ast, parse, parse_expression, tokenize, unparse


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------

class TestLexer:
    def test_token_positions_across_lines(self):
        tokens = tokenize("SELECT *\nFROM Tweets AS t")
        kinds = [(t.kind, t.text, t.line, t.column) for t in tokens]
        assert kinds == [
            ("keyword", "SELECT", 1, 1),
            ("op", "*", 1, 8),
            ("keyword", "FROM", 2, 1),
            ("ident", "Tweets", 2, 6),
            ("keyword", "AS", 2, 13),
            ("ident", "t", 2, 16),
            ("eof", "", 2, 17),
        ]

    def test_keywords_are_case_insensitive_but_keep_spelling(self):
        token = tokenize("select")[0]
        assert token.kind == "keyword" and token.text == "SELECT"
        assert token.value == "select"

    def test_string_escapes(self):
        token = tokenize(r"'it\'s \n \\ fine'")[0]
        assert token.value == "it's \n \\ fine"
        assert tokenize('"double"')[0].value == "double"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 10.25e-2 007")[:-1]]
        assert values == [1, 2.5, 1e3, 10.25e-2, 7]
        assert isinstance(values[0], int) and isinstance(values[1], float)

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT -- line comment\n/* block\ncomment */ *")
        assert [t.text for t in tokens] == ["SELECT", "*", ""]

    def test_unexpected_character_position(self):
        with pytest.raises(SqlppError) as excinfo:
            tokenize("SELECT @")
        assert (excinfo.value.line, excinfo.value.column) == (1, 8)
        assert excinfo.value.token == "@"

    def test_unterminated_string_points_at_opening_quote(self):
        with pytest.raises(SqlppError) as excinfo:
            tokenize("WHERE t.x = 'oops")
        assert (excinfo.value.line, excinfo.value.column) == (1, 13)

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlppError) as excinfo:
            tokenize("SELECT /* never closed")
        assert (excinfo.value.line, excinfo.value.column) == (1, 8)


# ---------------------------------------------------------------------------
# parser: shapes
# ---------------------------------------------------------------------------

class TestParserShapes:
    def test_minimal_query(self):
        query = parse("SELECT * FROM Tweets AS t")
        assert query.select.kind == "star"
        assert query.from_clause == ast.FromClause(dataset="Tweets", alias="t")
        assert query.where is None and query.limit is None

    def test_from_alias_defaults_and_bare_alias(self):
        assert parse("SELECT * FROM Tweets").from_clause.alias == "Tweets"
        assert parse("SELECT * FROM Tweets t").from_clause.alias == "t"

    def test_select_value_count_star(self):
        query = parse("SELECT VALUE count(*) FROM T AS t")
        assert query.select.kind == "value"
        assert query.select.value == ast.Call(name="count", star=True)

    def test_select_items_with_aliases(self):
        query = parse("SELECT t.user.name AS uname, length(t.text) FROM T AS t")
        first, second = query.select.items
        assert first.alias == "uname"
        assert first.expr == ast.Path(base=ast.Ident(name="t"), steps=("user", "name"))
        assert second.alias is None
        assert second.expr == ast.Call(
            name="length", args=(ast.Path(base=ast.Ident(name="t"), steps=("text",)),))

    def test_nested_paths_indexes_and_wildcards(self):
        expr = parse_expression("t.coordinates.coordinates[0]")
        assert expr == ast.Path(base=ast.Ident(name="t"),
                                steps=("coordinates", "coordinates", 0))
        expr = parse_expression("t.addresses[*].address_spec.country")
        assert expr == ast.Path(base=ast.Ident(name="t"),
                                steps=("addresses", "*", "address_spec", "country"))

    def test_keyword_field_names_are_allowed_after_dot(self):
        expr = parse_expression("subject.value")
        assert expr == ast.Path(base=ast.Ident(name="subject"), steps=("value",))

    def test_operator_precedence(self):
        expr = parse_expression("a.x + 2 * 3 < 10 AND NOT b.y = 4 OR c.z")
        # OR at the top
        assert isinstance(expr, ast.OrExpr)
        left, right = expr.operands
        assert isinstance(left, ast.AndExpr)
        assert right == ast.Path(base=ast.Ident(name="c"), steps=("z",))
        comparison, negation = left.operands
        assert isinstance(comparison, ast.BinOp) and comparison.op == "<"
        assert isinstance(comparison.left, ast.BinOp) and comparison.left.op == "+"
        assert comparison.left.right == ast.BinOp(op="*", left=ast.NumberLit(value=2),
                                                  right=ast.NumberLit(value=3))
        assert isinstance(negation, ast.NotExpr)

    def test_and_chains_flatten(self):
        expr = parse_expression("a AND b AND c AND d")
        assert isinstance(expr, ast.AndExpr) and len(expr.operands) == 4

    def test_quantified_expression(self):
        expr = parse_expression(
            "SOME ht IN t.entities.hashtags SATISFIES lowercase(ht.text) = 'jobs'")
        assert isinstance(expr, ast.Quantified)
        assert expr.var == "ht"
        assert expr.collection == ast.Path(base=ast.Ident(name="t"),
                                           steps=("entities", "hashtags"))
        assert isinstance(expr.predicate, ast.BinOp)

    def test_exists_and_is_tests(self):
        assert parse_expression("EXISTS t.entities.urls") == ast.ExistsExpr(
            operand=ast.Path(base=ast.Ident(name="t"), steps=("entities", "urls")))
        assert parse_expression("t.x IS MISSING") == ast.IsTest(
            operand=ast.Path(base=ast.Ident(name="t"), steps=("x",)), kind="missing")
        assert parse_expression("t.x IS NOT UNKNOWN") == ast.IsTest(
            operand=ast.Path(base=ast.Ident(name="t"), steps=("x",)),
            kind="unknown", negated=True)

    def test_literals(self):
        assert parse_expression("TRUE") == ast.BoolLit(value=True)
        assert parse_expression("NULL") == ast.NullLit()
        assert parse_expression("MISSING") == ast.MissingLit()
        assert parse_expression("-5") == ast.NegExpr(operand=ast.NumberLit(value=5))

    def test_full_clause_roster(self):
        query = parse("""
            SELECT sid, avg(r.temp) AS avg_temp
            FROM Sensors AS s
            LET threshold = 10 + 5
            UNNEST s.readings AS r
            WHERE s.report_time > 100 AND r.temp IS NOT UNKNOWN
            GROUP BY s.sensor_id AS sid
            ORDER BY avg_temp DESC, sid ASC
            LIMIT 10;
        """)
        assert [let.name for let in query.lets] == ["threshold"]
        assert [unnest.alias for unnest in query.unnests] == ["r"]
        assert query.group_by[0].alias == "sid"
        assert [item.descending for item in query.order_by] == [True, False]
        assert query.limit == ast.NumberLit(value=10)

    def test_unparse_round_trip_on_realistic_queries(self):
        from repro.datasets import sensors, twitter, wos

        for sqlpp in (*twitter.SQLPP.values(), *wos.SQLPP.values(),
                      *sensors.SQLPP.values()):
            tree = parse(sqlpp)
            assert parse(unparse(tree)) == tree


# ---------------------------------------------------------------------------
# parser: error positions
# ---------------------------------------------------------------------------

class TestParserErrors:
    @pytest.mark.parametrize("text,line,column", [
        ("SELECT", 1, 7),                                  # missing FROM
        ("SELECT FROM T", 1, 8),                           # missing select list
        ("SELECT * FROM", 1, 14),                          # missing dataset name
        ("SELECT * FROM T AS", 1, 19),                     # missing alias
        ("SELECT * FROM T WHERE", 1, 22),                  # missing predicate
        ("SELECT * FROM T AS t\nWHERE t.x ==", 2, 12),     # '==' is not an operator
        ("SELECT * FROM T AS t WHERE (t.x = 1", 1, 36),    # unclosed paren
        ("SELECT * FROM T AS t LIMIT 0", 1, 28),           # LIMIT must be positive
        ("SELECT * FROM T AS t LIMIT -3", 1, 28),          # negative LIMIT
        ("SELECT * FROM T AS t trailing", 1, 22),          # garbage after query
        ("SELECT * FROM T AS t WHERE t.", 1, 30),          # dangling dot
        ("SELECT * FROM T AS t WHERE t.x IS BROKEN", 1, 35),
        ("SELECT * FROM T AS t WHERE t.a[x]", 1, 32),      # non-integer index
    ])
    def test_error_positions(self, text, line, column):
        with pytest.raises(SqlppError) as excinfo:
            parse(text)
        error = excinfo.value
        assert (error.line, error.column) == (line, column), str(error)

    def test_let_after_unnest_is_rejected_with_clear_message(self):
        # The engine evaluates LETs before UNNESTs, so a LET referencing the
        # unnest alias could never execute; the parser says so up front.
        with pytest.raises(SqlppError, match="LET clauses must precede UNNEST") as excinfo:
            parse("SELECT VALUE m FROM Sensors AS s UNNEST s.readings AS r LET m = r.temp")
        assert (excinfo.value.line, excinfo.value.column) == (1, 57)

    @pytest.mark.parametrize("pathological", [
        "(" * 5000 + "1" + ")" * 5000,
        "NOT " * 5000 + "TRUE",
        "- " * 5000 + "1",
    ])
    def test_pathological_nesting_raises_sqlpp_error_not_recursion(self, pathological):
        with pytest.raises(SqlppError, match="nesting too deep"):
            parse(f"SELECT * FROM T AS t WHERE {pathological} = 1")

    def test_reasonable_nesting_still_parses(self):
        depth = 40
        parse("SELECT * FROM T AS t WHERE " + "(" * depth + "1" + ")" * depth + " = 1")

    def test_error_message_mentions_found_token(self):
        with pytest.raises(SqlppError, match="found 'LIMIT'"):
            parse("SELECT * FROM T AS t WHERE LIMIT 3")

    def test_errors_are_query_errors(self):
        from repro.errors import QueryError, ReproError

        with pytest.raises(QueryError):
            parse("not sql")
        assert issubclass(SqlppError, ReproError)
