"""Chaos suite: randomized fault schedules over concurrent ingest + queries.

The end-to-end robustness contract (ISSUE PR 9), checked under
hypothesis-generated fault schedules rather than hand-picked ones:

* **No silent corruption** — with arbitrary transient/permanent/corrupt
  faults firing at any registered injection point, every operation and
  every query either raises a *typed* :class:`~repro.errors.ReproError`
  or behaves exactly; concurrent scans never return duplicated keys or
  values that were never written.
* **Oracle parity** — once the fault schedule is exhausted and maintenance
  is resumed, the surviving dataset holds exactly the rows a no-fault
  oracle (a plain dict fed the same *applied* operations) predicts.
  Classification is exact because of the write path's ordering: the WAL
  append precedes the memtable put, so a typed I/O error means *not
  applied*, while a :class:`~repro.errors.SchedulerError` is backpressure
  raised after the put — *applied*.
* **Torn-tail recovery** — a crash mid-flush leaves an INVALID component
  and a WAL whose tail may be torn; recovery removes the former, cuts the
  log at the first CRC-bad record, and replays to exactly the rows whose
  appends preceded the tear.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, LSMConfig, StorageEnvironment, StorageFormat
from repro.config import env_str
from repro.errors import ReproError, SchedulerError
from repro.faults import FAULTS_ENV_VAR, get_injector
from repro.storage.wal import LogRecordType

SMALL_BUDGET = 8 * 1024

#: Points a parity run may fault.  All nine registered points are fair game:
#: read-path corruption can permanently quarantine a component, in which case
#: the final scan must raise the typed error instead of matching the oracle —
#: both outcomes are accepted below, per the contract.
_POINTS = [
    "device.read", "device.write", "file.read_page", "file.write_page",
    "buffercache.miss", "wal.append", "wal.truncate",
    "scheduler.flush", "scheduler.merge",
]

_DELETED = object()


@pytest.fixture(autouse=True)
def _isolated_injector():
    injector = get_injector()
    injector.clear()
    yield injector
    injector.clear()
    spec = env_str(FAULTS_ENV_VAR)
    if spec:
        injector.load_spec(spec)


def _lsm(background=True, **overrides):
    defaults = dict(memory_component_budget=SMALL_BUDGET,
                    max_tolerable_component_count=3,
                    max_sealed_memtables=2,
                    background_maintenance=background)
    defaults.update(overrides)
    return LSMConfig(**defaults)


def _settle(dataset, injector, attempts=50):
    """Clear the fault schedule, then resume maintenance until it drains."""
    injector.clear()
    for _ in range(attempts):
        try:
            dataset.drain()
            return
        except SchedulerError:
            dataset.resume_maintenance()
    pytest.fail("maintenance never settled after the fault schedule cleared")


_RULES = st.lists(
    st.fixed_dictionaries({
        "point": st.sampled_from(_POINTS),
        "error": st.sampled_from(["transient", "permanent", "corrupt"]),
        "nth": st.integers(min_value=2, max_value=12),
        "times": st.integers(min_value=1, max_value=3),
    }),
    min_size=1, max_size=3)

_OPS = st.lists(
    st.tuples(st.sampled_from(["upsert", "delete"]),
              st.integers(min_value=0, max_value=30),
              st.integers(min_value=0, max_value=9)),
    min_size=25, max_size=80)


class TestChaosOracleParity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large,
                                     HealthCheck.filter_too_much])
    @given(rules=_RULES, ops=_OPS)
    def test_faulted_ingest_matches_oracle_or_raises_typed(self, rules, ops):
        injector = get_injector()
        injector.clear()
        for rule in rules:
            injector.add_rule(rule["point"], nth=rule["nth"],
                              error=rule["error"], times=rule["times"])

        environment = StorageEnvironment()
        dataset = Dataset.create("chaos", StorageFormat.INFERRED,
                                 environment=environment, partitions=2,
                                 lsm=_lsm())
        oracle = {}
        versions = {}  # key -> every val ever written (for concurrent scans)

        # Concurrent reader: every scan outcome must be a typed ReproError or
        # a sane snapshot — unique keys, only values some write produced.
        stop = threading.Event()
        reader_failures = []

        def reader():
            while not stop.is_set():
                try:
                    rows = list(dataset.scan())
                except ReproError:
                    continue
                except BaseException as exc:  # noqa: BLE001 - the assertion
                    reader_failures.append(exc)
                    return
                seen = [row["id"] for row in rows]
                if len(seen) != len(set(seen)):
                    reader_failures.append(AssertionError(
                        f"scan returned duplicated keys: {sorted(seen)}"))
                    return
                for row in rows:
                    if row["val"] not in versions.get(row["id"], set()):
                        reader_failures.append(AssertionError(
                            f"scan returned never-written row {row}"))
                        return

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            for op, key, val in ops:
                try:
                    if op == "upsert":
                        versions.setdefault(key, set()).add(val)
                        dataset.upsert({"id": key, "val": val})
                        oracle[key] = val
                    else:
                        dataset.delete(key)
                        oracle[key] = _DELETED
                except SchedulerError:
                    # Backpressure surfaced a latched background failure —
                    # the WAL append and memtable put already happened.
                    if op == "upsert":
                        oracle[key] = val
                    else:
                        oracle[key] = _DELETED
                    dataset.resume_maintenance()
                except ReproError:
                    # Typed failure before the put (WAL append, antischema
                    # read, missing delete key): the operation did not apply.
                    pass
        finally:
            stop.set()
            reader_thread.join()

        if reader_failures:
            raise reader_failures[0]

        _settle(dataset, injector)
        expected = sorted((key, val) for key, val in oracle.items()
                          if val is not _DELETED)
        try:
            actual = sorted((row["id"], row["val"]) for row in dataset.scan())
        except ReproError:
            # A corrupt-read fault quarantined a component: the typed error
            # IS the accepted outcome — never silently wrong rows.
            return
        assert actual == expected
        assert dataset.count() == len(expected)


class TestCrashTornTailRecovery:
    def test_crash_mid_flush_with_torn_tail_recovers_exactly(self):
        """Every background flush dies before the footer (crash-mid-flush),
        then the WAL tail is torn at a known record: recovery must remove
        the INVALID component, cut the log at the tear, and land on exactly
        the rows appended before it."""
        environment = StorageEnvironment()
        dataset = Dataset.create("chaos_crash", StorageFormat.INFERRED,
                                 environment=environment, partitions=1,
                                 lsm=_lsm(max_sealed_memtables=8))
        index = dataset.partitions[0].index
        original = index._flush_memtable

        def crashing_flush(memtable, up_to_lsn=None, fail_before_footer=False):
            return original(memtable, up_to_lsn=up_to_lsn, fail_before_footer=True)

        index._flush_memtable = crashing_flush

        torn_from = 35
        pad = "x" * 600  # force several memtable rotations under the 8 KB budget
        for i in range(50):
            dataset.insert({"id": i, "val": i, "pad": pad})
        with pytest.raises(SchedulerError):
            dataset.close()

        # No flush ever committed, so every insert is still in the WAL.
        # Tear the record for key `torn_from`: recovery must drop it and
        # everything after it.
        wal = environment.wal
        torn = [record for record in wal.replay()
                if record.record_type is LogRecordType.INSERT
                and record.key == torn_from]
        assert len(torn) == 1
        torn[0].payload = b"\x00" + torn[0].payload[1:]

        invalid = [name for name in environment.file_manager.list_files()
                   if name.startswith("chaos_crash_p0_c")]
        assert invalid, "the dying flush should have left a partial component"

        # The tear cuts the log at `torn_from`'s record: everything after it
        # (inserts 35..49, plus any later flush markers) is unreadable.
        assert wal.drop_torn_tail() >= 50 - torn_from

        revived = Dataset.create("chaos_crash", StorageFormat.INFERRED,
                                 environment=environment, partitions=1,
                                 lsm=_lsm(background=False))
        revived.partitions[0].recover()
        assert sorted(row["id"] for row in revived.scan()) == list(range(torn_from))
        assert revived.count() == torn_from

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tail=st.integers(min_value=1, max_value=12),
           tear_at=st.integers(min_value=1, max_value=12))
    def test_torn_tail_position_determines_recovered_rows(self, tail, tear_at):
        """For any tail length and tear position: flushed rows always
        survive, and exactly the WAL-only rows before the tear replay."""
        tear_at = min(tear_at, tail)
        injector = get_injector()
        injector.clear()

        environment = StorageEnvironment()
        dataset = Dataset.create("chaos_tail", StorageFormat.INFERRED,
                                 environment=environment, partitions=1,
                                 lsm=_lsm(background=False,
                                          memory_component_budget=1 << 20))
        flushed = 20
        for i in range(flushed):
            dataset.insert({"id": i, "val": i})
        dataset.flush_all()

        # `tear_at`-th tail append is stored torn (CRC-bad) by the injector.
        injector.add_rule("wal.append", nth=tear_at, times=1, error="corrupt")
        for i in range(flushed, flushed + tail):
            dataset.insert({"id": i, "val": i})
        injector.clear()

        assert environment.wal.drop_torn_tail() == tail - tear_at + 1

        revived = Dataset.create("chaos_tail", StorageFormat.INFERRED,
                                 environment=environment, partitions=1,
                                 lsm=_lsm(background=False))
        revived.partitions[0].recover()
        expected = list(range(flushed + tear_at - 1))
        assert sorted(row["id"] for row in revived.scan()) == expected
