"""Plan cache, prepared statements, and the decoded column-slice cache.

The contract pinned down here (PR 10):

* repeated ``Dataset.query(text)`` calls reuse the compiled physical plan
  (``stats.plan_source == "cache"``) and return rows identical to a cold
  compile; ``Dataset.prepare`` pins a plan without the shared cache;
* any event that can change optimizer inputs — ``CREATE INDEX``, flush,
  merge, bulk load, ``invalidate_plans`` — moves the reuse epoch, so stale
  plans stop matching instead of being served;
* warm scans served by the column-slice cache are row-identical to a
  cold-cache oracle under arbitrary interleavings of ingest, flush, merge,
  CREATE INDEX, and queries (hypothesis-driven), and memtable rows are
  always re-read, so unflushed updates are never hidden by the cache;
* a quarantined component's cached slices are evicted and queries re-raise
  ``QuarantinedComponentError`` — a poisoned cache can never serve rows
  the storage layer refuses to;
* ``cache.lookup``/``cache.store`` faults degrade to misses/skipped
  stores: identical rows, never an error surfaced to the query;
* both knobs (``REPRO_PLAN_CACHE``, ``REPRO_COLUMN_CACHE_BYTES``) disable
  their layer entirely at 0, with byte-identical results.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, StorageFormat
from repro.cache import (
    COLUMN_CACHE_BYTES_ENV_VAR,
    ColumnSliceCache,
    PLAN_CACHE_ENV_VAR,
    PlanCache,
    SliceScanStats,
    cached_component_scan,
    normalize_statement,
)
from repro.cache.column_cache import paths_cache_key
from repro.core import PreparedStatement
from repro.errors import DatasetError, QuarantinedComponentError
from repro.faults import FAULTS_ENV_VAR, get_injector
from repro.config import env_str
from repro.obs import MetricsRegistry


@pytest.fixture(autouse=True)
def _default_cache_env(monkeypatch):
    """Pin the module to the default cache/execution configuration.

    CI runs the whole tier-1 suite under knob legs that disable the very
    layers this module asserts on (``REPRO_PLAN_CACHE=0``,
    ``REPRO_COLUMN_CACHE_BYTES=0``, ``REPRO_EXECUTION_MODE=row``); the
    knob-off behaviors are covered explicitly by the tests below, so the
    rest of the module runs against the defaults regardless of the leg.
    """
    for variable in (PLAN_CACHE_ENV_VAR, COLUMN_CACHE_BYTES_ENV_VAR,
                     "REPRO_EXECUTION_MODE", "REPRO_BATCH_SIZE",
                     "REPRO_LSM_SCHEDULER"):
        monkeypatch.delenv(variable, raising=False)


@pytest.fixture(autouse=True)
def _isolated_injector():
    injector = get_injector()
    injector.clear()
    yield injector
    injector.clear()
    spec = env_str(FAULTS_ENV_VAR)
    if spec:
        injector.load_spec(spec)


def _dataset(name, rows=60, partitions=1, **overrides):
    dataset = Dataset.create(name, StorageFormat.INFERRED, partitions=partitions,
                             **overrides)
    for key in range(rows):
        dataset.insert({"id": key, "name": f"user{key}", "age": key % 45,
                        "city": f"c{key % 7}"})
    dataset.flush_all()
    return dataset


QUERY = "SELECT d.name AS name FROM Ds AS d WHERE d.age < 20"


def _rows(result):
    return sorted(row["name"] for row in result.rows)


# ---------------------------------------------------------------------------
# plan cache: unit behavior
# ---------------------------------------------------------------------------

class TestPlanCacheUnit:
    def test_lru_bounds_and_eviction_order(self):
        registry = MetricsRegistry()
        cache = PlanCache(capacity=2, metrics=registry)
        cache.put("a", "plan-a")
        cache.put("b", "plan-b")
        assert cache.get("a") == "plan-a"  # refreshes "a"
        cache.put("c", "plan-c")           # evicts "b", the LRU entry
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == "plan-a"
        assert cache.get("c") == "plan-c"
        assert registry.counter("plan_cache_evictions").value == 1
        assert registry.gauge("plan_cache_entries").value == 2

    def test_zero_capacity_disables(self):
        cache = PlanCache(capacity=0, metrics=MetricsRegistry())
        assert not cache.enabled
        cache.put("a", "plan-a")
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_capacity_knob(self, monkeypatch):
        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "3")
        assert PlanCache(metrics=MetricsRegistry()).capacity == 3
        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "0")
        assert not PlanCache(metrics=MetricsRegistry()).enabled

    def test_normalize_statement_collapses_whitespace(self):
        assert normalize_statement("SELECT  x\n FROM\t y ") == "SELECT x FROM y"

    def test_normalize_statement_preserves_string_literals(self):
        # Whitespace *inside* a quoted literal is part of the bound constant:
        # collapsing it would alias two different queries onto one plan.
        assert (normalize_statement("SELECT  'x  y'\n FROM t")
                == "SELECT 'x  y' FROM t")
        assert (normalize_statement("WHERE a = 'x  y'")
                != normalize_statement("WHERE a = 'x y'"))
        assert (normalize_statement("WHERE a = 'x\ty'")
                != normalize_statement("WHERE a = 'x y'"))
        # Escaped quotes must not terminate the literal early.
        assert (normalize_statement("SELECT 'don\\'t  stop'  FROM t")
                == "SELECT 'don\\'t  stop' FROM t")
        assert (normalize_statement('SELECT "a \\" b"  FROM t')
                == 'SELECT "a \\" b" FROM t')

    def test_normalize_statement_strips_comments_outside_literals(self):
        assert normalize_statement("SELECT x -- trailing\nFROM y") == "SELECT x FROM y"
        assert normalize_statement("SELECT/* c */x  FROM y") == "SELECT x FROM y"
        assert (normalize_statement("SELECT '--not  a comment' FROM y")
                == "SELECT '--not  a comment' FROM y")
        assert (normalize_statement("SELECT '/* nor  this */' FROM y")
                == "SELECT '/* nor  this */' FROM y")


# ---------------------------------------------------------------------------
# column-slice cache: unit behavior
# ---------------------------------------------------------------------------

class TestColumnCacheUnit:
    def test_store_get_roundtrip_and_accounting(self):
        cache = ColumnSliceCache(capacity_bytes=1 << 20, metrics=MetricsRegistry())
        pkey = paths_cache_key((("user", "name"),))
        rows = [(k, False, ("v%d" % k,)) for k in range(4)]
        cache.store_chunk("comp_1", pkey, 0, rows, last=True)
        chunk = cache.get_chunk("comp_1", pkey, 0)
        assert chunk is not None and list(chunk.rows) == rows and chunk.last
        assert cache.bytes_used > 0
        assert cache.entry_count("comp_1") == 1
        assert cache.get_chunk("comp_1", pkey, 1) is None

    def test_byte_budget_evicts_lru(self):
        registry = MetricsRegistry()
        cache = ColumnSliceCache(capacity_bytes=700, metrics=registry)
        pkey = paths_cache_key((("name",),))
        for index in range(6):
            cache.store_chunk("comp_1", pkey, index,
                              [(index, False, ("x" * 50,))], last=False)
        assert cache.bytes_used <= 700
        assert cache.entry_count() < 6
        assert registry.counter("column_cache_evictions").value > 0
        # Oldest chunks went first.
        assert cache.get_chunk("comp_1", pkey, 0) is None

    def test_oversized_chunk_is_not_cached(self):
        cache = ColumnSliceCache(capacity_bytes=64, metrics=MetricsRegistry())
        pkey = paths_cache_key((("name",),))
        cache.store_chunk("comp_1", pkey, 0, [(0, False, ("y" * 500,))], last=True)
        assert cache.entry_count() == 0 and cache.bytes_used == 0

    def test_invalidate_component_drops_only_its_chunks(self):
        cache = ColumnSliceCache(capacity_bytes=1 << 20, metrics=MetricsRegistry())
        pkey = paths_cache_key((("name",),))
        cache.store_chunk("comp_1", pkey, 0, [(0, False, ("a",))], last=True)
        cache.store_chunk("comp_2", pkey, 0, [(0, False, ("b",))], last=True)
        cache.invalidate_component("comp_1")
        assert cache.entry_count("comp_1") == 0
        assert cache.get_chunk("comp_2", pkey, 0) is not None

    def test_zero_budget_disables(self, monkeypatch):
        monkeypatch.setenv(COLUMN_CACHE_BYTES_ENV_VAR, "0")
        cache = ColumnSliceCache(metrics=MetricsRegistry())
        assert not cache.enabled
        pkey = paths_cache_key((("name",),))
        cache.store_chunk("comp_1", pkey, 0, [(0, False, ("a",))], last=True)
        assert cache.get_chunk("comp_1", pkey, 0) is None

    @staticmethod
    def _fake_component(rows):
        """Minimal stand-in for an on-disk component: scan() yields entries."""
        class Entry:
            def __init__(self, key, value, is_antimatter):
                self.key = key
                self.value = value
                self.is_antimatter = is_antimatter

        class Component:
            file_name = "comp_fake"
            schema = None

            def scan(self):
                return iter(Entry(*row) for row in rows)

        return Component()

    class _IdentityExtractor:
        @staticmethod
        def extract(record):
            return (record,)

    def test_slice_stats_symmetric_with_antimatter(self):
        # Cold and warm scans of the same rows must report the same totals:
        # anti-matter rows count in *both* counters, so EXPLAIN ANALYZE's
        # hit-rate denominator matches across the two scan paths.
        cache = ColumnSliceCache(capacity_bytes=1 << 20,
                                 metrics=MetricsRegistry(), chunk_rows=2)
        component = self._fake_component(
            [(0, {"v": 0}, False), (1, None, True), (2, {"v": 2}, False)])
        pkey = paths_cache_key((("v",),))
        cold = SliceScanStats()
        list(cached_component_scan(cache, component, lambda v: v,
                                   self._IdentityExtractor, pkey, cold))
        warm = SliceScanStats()
        list(cached_component_scan(cache, component, lambda v: v,
                                   self._IdentityExtractor, pkey, warm))
        assert (cold.hits, cold.misses) == (0, 3)
        assert (warm.hits, warm.misses) == (3, 0)

    def test_served_values_shielded_from_caller_mutation(self):
        # Mutating a yielded row (cold or warm) must never reach the cache.
        cache = ColumnSliceCache(capacity_bytes=1 << 20,
                                 metrics=MetricsRegistry(), chunk_rows=2)
        component = self._fake_component(
            [(0, {"name": "u0"}, False), (1, {"name": "u1"}, False)])
        pkey = paths_cache_key((("name",),))
        cold = list(cached_component_scan(cache, component, lambda v: v,
                                          self._IdentityExtractor, pkey))
        cold[0][5][0]["name"] = "scribbled"  # cold rows share a store pass
        warm = list(cached_component_scan(cache, component, lambda v: v,
                                          self._IdentityExtractor, pkey))
        assert [row[5][0]["name"] for row in warm] == ["u0", "u1"]
        warm[1][5][0]["name"] = "scribbled"  # warm rows come from the cache
        again = list(cached_component_scan(cache, component, lambda v: v,
                                           self._IdentityExtractor, pkey))
        assert [row[5][0]["name"] for row in again] == ["u0", "u1"]


# ---------------------------------------------------------------------------
# plan cache + prepared statements: end to end
# ---------------------------------------------------------------------------

class TestPlanCacheIntegration:
    def test_repeat_query_hits_and_rows_match(self):
        dataset = _dataset("PcRepeat")
        first = dataset.query(QUERY)
        second = dataset.query(QUERY)
        assert first.stats.plan_source == "compiled"
        assert second.stats.plan_source == "cache"
        assert _rows(first) == _rows(second)
        dataset.close()

    def test_whitespace_variants_share_one_entry(self):
        dataset = _dataset("PcWs")
        dataset.query(QUERY)
        variant = dataset.query("SELECT   d.name AS name\n  FROM Ds AS d\n"
                                "  WHERE d.age < 20")
        assert variant.stats.plan_source == "cache"
        assert len(dataset.plan_cache) == 1
        dataset.close()

    def test_string_literal_whitespace_not_conflated(self):
        # The REVIEW.md high-severity repro: two queries differing only by
        # whitespace inside a quoted literal must get distinct plans (and
        # distinct, correct rows) — never the other's cached constant.
        dataset = _dataset("PcLit", rows=5)
        dataset.insert({"id": 100, "name": "n100", "age": 1, "city": "x y"})
        dataset.insert({"id": 101, "name": "n101", "age": 1, "city": "x  y"})
        dataset.flush_all()
        single = dataset.query(
            "SELECT d.id AS id FROM Ds AS d WHERE d.city = 'x y'")
        double = dataset.query(
            "SELECT d.id AS id FROM Ds AS d WHERE d.city = 'x  y'")
        assert [row["id"] for row in single.rows] == [100]
        assert [row["id"] for row in double.rows] == [101]
        assert double.stats.plan_source == "compiled"  # its own cache entry
        assert dataset.query(
            "SELECT d.id AS id FROM Ds AS d WHERE d.city = 'x  y'"
        ).stats.plan_source == "cache"
        dataset.close()

    def test_prepared_statement_preserves_literal_whitespace(self, monkeypatch):
        # Preparing must compile the *original* text: a literal with
        # consecutive spaces has to survive even with the plan cache off.
        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "0")
        dataset = _dataset("PsLit", rows=5)
        dataset.insert({"id": 100, "name": "n100", "age": 1, "city": "x  y"})
        dataset.flush_all()
        statement = dataset.prepare(
            "SELECT d.id AS id FROM Ds AS d WHERE d.city = 'x  y'")
        assert [row["id"] for row in statement.execute().rows] == [100]
        dataset.close()

    def test_create_index_moves_epoch(self):
        dataset = _dataset("PcIdx")
        dataset.query(QUERY)
        assert dataset.query(QUERY).stats.plan_source == "cache"
        epoch_before = dataset.reuse_epoch()
        dataset.query("CREATE INDEX iAge ON Ds (age)")
        assert dataset.reuse_epoch() != epoch_before
        replanned = dataset.query(QUERY)
        assert replanned.stats.plan_source == "compiled"
        assert _rows(replanned) == _rows(dataset.query(QUERY))
        dataset.close()

    def test_flush_and_merge_move_epoch(self):
        dataset = _dataset("PcFlush")
        dataset.query(QUERY)
        dataset.insert({"id": 1000, "name": "user1000", "age": 1})
        dataset.flush_all()
        after_flush = dataset.query(QUERY)
        assert after_flush.stats.plan_source == "compiled"
        assert "user1000" in _rows(after_flush)
        index = dataset.partitions[0].index
        if index.component_count() >= 2:
            dataset.query(QUERY)
            index.merge(list(index.components))
            assert dataset.query(QUERY).stats.plan_source == "compiled"
        dataset.close()

    def test_invalidate_plans_forces_recompile(self):
        dataset = _dataset("PcInval")
        dataset.query(QUERY)
        dataset.invalidate_plans()
        assert len(dataset.plan_cache) == 0
        assert dataset.query(QUERY).stats.plan_source == "compiled"
        dataset.close()

    def test_executor_signature_partitions_entries(self):
        dataset = _dataset("PcSig")
        dataset.query(QUERY)  # batch-mode entry
        row_mode = dataset.query(QUERY, execution_mode="row")
        assert row_mode.stats.plan_source == "compiled"
        assert dataset.query(QUERY, execution_mode="row").stats.plan_source == "cache"
        dataset.close()

    def test_knob_zero_disables_plan_cache(self, monkeypatch):
        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "0")
        dataset = _dataset("PcOff")
        baseline = dataset.query(QUERY)
        repeat = dataset.query(QUERY)
        assert baseline.stats.plan_source == "compiled"
        assert repeat.stats.plan_source == "compiled"
        assert _rows(baseline) == _rows(repeat)
        dataset.close()

    def test_prepared_statement_reuses_plan(self):
        dataset = _dataset("PsBasic")
        statement = dataset.prepare(QUERY)
        assert isinstance(statement, PreparedStatement)
        oracle = _rows(dataset.query(QUERY, execution_mode="row"))
        first = statement.execute()
        assert first.stats.plan_source == "cache"
        assert _rows(first) == oracle
        # Epoch move (CREATE INDEX) re-prepares transparently.
        dataset.query("CREATE INDEX iAge2 ON Ds (age)")
        replanned = statement.execute()
        assert replanned.stats.plan_source == "compiled"
        assert _rows(replanned) == oracle
        assert statement.execute().stats.plan_source == "cache"
        dataset.close()

    def test_prepared_statement_works_with_cache_disabled(self, monkeypatch):
        monkeypatch.setenv(PLAN_CACHE_ENV_VAR, "0")
        dataset = _dataset("PsOff")
        statement = dataset.prepare(QUERY)
        assert statement.execute().stats.plan_source == "cache"
        dataset.close()

    def test_prepare_rejects_create_index_and_arg_conflicts(self):
        dataset = _dataset("PsReject", rows=5)
        with pytest.raises(DatasetError):
            dataset.prepare("CREATE INDEX iX ON Ds (age)")
        from repro.query import QueryExecutor
        with pytest.raises(DatasetError):
            dataset.prepare(QUERY, executor=QueryExecutor(), parallelism=1)
        with pytest.raises(DatasetError):
            dataset.query(QUERY, executor=QueryExecutor(), parallelism=1)
        dataset.close()

    def test_explain_analyze_reports_plan_source(self):
        dataset = _dataset("PcExplain")
        first = dataset.explain(QUERY, analyze=True)
        assert "plan: compiled" in first
        second = dataset.explain(QUERY, analyze=True)
        assert "plan: cached" in second
        assert "column-slice cache" in second
        dataset.close()


# ---------------------------------------------------------------------------
# column-slice cache: end to end
# ---------------------------------------------------------------------------

class TestColumnCacheIntegration:
    def test_warm_scan_served_from_slices(self):
        dataset = _dataset("CcWarm")
        # Empty both caches so the cold run pays real device reads; the warm
        # run must then read strictly fewer (zero) device bytes.
        dataset.environments[0].drop_caches()
        cold = dataset.query(QUERY)
        warm = dataset.query(QUERY)
        assert cold.stats.slice_cache_misses > 0
        assert warm.stats.slice_cache_hits > 0
        assert warm.stats.bytes_read < cold.stats.bytes_read
        assert _rows(cold) == _rows(warm)
        dataset.close()

    def test_slice_stats_symmetric_across_cold_and_warm(self):
        dataset = _dataset("CcSym")
        dataset.delete(0)  # flushed deletes put anti-matter rows in a
        dataset.delete(1)  # component; both scans must count them alike
        dataset.flush_all()
        dataset.environments[0].drop_caches()
        cold = dataset.query(QUERY)
        warm = dataset.query(QUERY)
        assert cold.stats.slice_cache_misses > 0
        assert warm.stats.slice_cache_hits == cold.stats.slice_cache_misses
        assert warm.stats.slice_cache_misses == 0
        assert _rows(cold) == _rows(warm)
        dataset.close()

    def test_memtable_rows_never_served_stale(self):
        dataset = _dataset("CcMem")
        dataset.query(QUERY)  # warm the slices
        dataset.insert({"id": 2000, "name": "fresh", "age": 0})
        dataset.upsert({"id": 0, "name": "updated0", "age": 0})
        warm = dataset.query(QUERY)
        names = _rows(warm)
        assert "fresh" in names
        assert "updated0" in names and "user0" not in names
        dataset.close()

    def test_knob_zero_disables_column_cache(self, monkeypatch):
        monkeypatch.setenv(COLUMN_CACHE_BYTES_ENV_VAR, "0")
        dataset = _dataset("CcOff")
        cold = dataset.query(QUERY)
        warm = dataset.query(QUERY)
        assert warm.stats.slice_cache_hits == 0
        assert warm.stats.slice_cache_misses == 0
        assert _rows(cold) == _rows(warm)
        dataset.close()

    def test_dropped_component_evicts_slices(self):
        dataset = _dataset("CcDrop")
        dataset.query(QUERY)
        environment = dataset.environments[0]
        assert environment.column_cache.entry_count() > 0
        index = dataset.partitions[0].index
        dataset.insert({"id": 3000, "name": "m", "age": 1})
        dataset.flush_all()
        old_files = [component.file_name for component in index.components]
        index.merge(list(index.components))
        for file_name in old_files:
            assert environment.column_cache.entry_count(file_name) == 0
        warm = dataset.query(QUERY)
        assert "m" in _rows(warm)
        dataset.close()

    def test_quarantine_evicts_slices_and_reraises(self):
        dataset = _dataset("CcQuar")
        environment = dataset.environments[0]
        dataset.query(QUERY)  # warm: slices of the flushed component cached
        index = dataset.partitions[0].index
        component_file = index.components[0].file_name
        assert environment.column_cache.entry_count(component_file) > 0
        # Force a disk read to trip the checksum: cold buffer cache + point
        # lookup (the slice cache serves scans, not point lookups).
        environment.buffer_cache.clear()
        get_injector().add_rule("file.read_page", nth=1, error="corrupt", times=1)
        with pytest.raises(QuarantinedComponentError):
            dataset.get(7)
        # The poisoned component's decoded slices are gone...
        assert environment.column_cache.entry_count(component_file) == 0
        # ...and a warm query re-raises instead of serving cached values.
        with pytest.raises(QuarantinedComponentError):
            dataset.query(QUERY)
        dataset.close()


# ---------------------------------------------------------------------------
# fault degrade: cache faults cost latency, never correctness
# ---------------------------------------------------------------------------

class TestCacheFaultDegrade:
    def test_lookup_faults_degrade_to_miss(self):
        dataset = _dataset("CfLookup")
        oracle = _rows(dataset.query(QUERY))
        get_injector().add_rule("cache.lookup", nth=1)  # every lookup faults
        for _ in range(3):
            result = dataset.query(QUERY)
            assert _rows(result) == oracle
            assert result.stats.plan_source == "compiled"  # forced re-plan
        dataset.close()

    def test_store_faults_skip_the_store(self):
        dataset = _dataset("CfStore")
        get_injector().add_rule("cache.store", nth=1)  # every store faults
        first = dataset.query(QUERY)
        second = dataset.query(QUERY)
        assert len(dataset.plan_cache) == 0
        assert dataset.environments[0].column_cache.entry_count() == 0
        assert second.stats.plan_source == "compiled"
        assert _rows(first) == _rows(second)
        dataset.close()


# ---------------------------------------------------------------------------
# interleaved lifecycle parity (hypothesis)
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("upsert"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("flush"), st.just(0)),
        st.tuples(st.just("merge"), st.just(0)),
        st.tuples(st.just("create_index"), st.just(0)),
        st.tuples(st.just("query"), st.integers(min_value=1, max_value=45)),
    ),
    min_size=4, max_size=18,
)


class TestInterleavedParity:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(ops=_OPS, seed=st.integers(min_value=0, max_value=2**16))
    def test_warm_results_match_cold_oracle(self, ops, seed):
        """Arbitrary ingest/flush/merge/CREATE INDEX/query interleavings:
        every warm (cached) query must be row-identical to a cold-cache
        oracle run of the same text executed immediately after."""
        dataset = Dataset.create(f"IlPar{seed}", StorageFormat.INFERRED)
        try:
            index_count = 0
            live = set()
            for step, (op, arg) in enumerate(ops):
                if op == "insert":
                    if arg in live:  # duplicate primary key: model as update
                        dataset.upsert({"id": arg, "name": f"user{arg}",
                                        "age": (arg * 7) % 45})
                    else:
                        dataset.insert({"id": arg, "name": f"user{arg}",
                                        "age": (arg * 7) % 45})
                    live.add(arg)
                elif op == "upsert":
                    dataset.upsert({"id": arg, "name": f"upd{arg}-{step}",
                                    "age": (arg * 3) % 45})
                    live.add(arg)
                elif op == "delete":
                    if arg in live:
                        dataset.delete(arg)
                        live.discard(arg)
                elif op == "flush":
                    dataset.flush_all()
                elif op == "merge":
                    index = dataset.partitions[0].index
                    if index.component_count() >= 2:
                        index.merge(list(index.components))
                elif op == "create_index":
                    index_count += 1
                    dataset.query(f"CREATE INDEX iAge{index_count} ON Ds (age)")
                else:  # query — warm first (whatever the caches hold), then oracle
                    text = (f"SELECT d.name AS name FROM Ds AS d "
                            f"WHERE d.age < {arg}")
                    warm = dataset.query(text)
                    dataset.invalidate_plans()
                    for environment in dataset.environments:
                        environment.drop_caches()
                    cold = dataset.query(text)
                    assert cold.stats.plan_source == "compiled"
                    assert sorted(map(str, warm.rows)) == sorted(map(str, cold.rows))
        finally:
            dataset.close()
