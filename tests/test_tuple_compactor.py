"""Tests for the tuple compactor attached to the LSM flush lifecycle."""

import pytest

from repro.config import DatasetConfig, LSMConfig, StorageFormat
from repro.core import Dataset, StorageEnvironment, TupleCompactor
from repro.lsm import LSMBTree, NoMergePolicy
from repro.schema import InferredSchema
from repro.storage import BufferCache, InMemoryFileManager, SimulatedStorageDevice
from repro.types import TypeTag, deep_equals, open_only_primary_key
from repro.vector import VectorEncoder, is_compacted


def _compacting_index(memory_budget=1 << 20, maintain_pk=True):
    device = SimulatedStorageDevice()
    cache = BufferCache(InMemoryFileManager(device, 2048), 512)
    datatype = open_only_primary_key("EmployeeType")
    compactor = TupleCompactor(datatype)
    index = LSMBTree("emp", 0, cache, memory_budget, NoMergePolicy(), compactor,
                     maintain_primary_key_index=maintain_pk)
    encoder = VectorEncoder(datatype)
    return index, compactor, encoder


def _insert(index, encoder, record):
    index.insert(record["id"], record, encoder.encode(record))


def _upsert(index, encoder, record):
    index.upsert(record["id"], record, encoder.encode(record))


class TestFlushTimeInference:
    def test_paper_figure9_flow(self):
        """Reproduces Figure 9: two flushes and the union-typed age field."""
        index, compactor, encoder = _compacting_index()
        _insert(index, encoder, {"id": 0, "name": "Kim", "age": 26})
        _insert(index, encoder, {"id": 1, "name": "John", "age": 22})
        index.flush()
        schema_after_c0 = index.components[0].schema
        age = schema_after_c0.root.child(schema_after_c0.field_name_id("age"))
        assert age.tag is TypeTag.INT64

        _insert(index, encoder, {"id": 2, "name": "Ann"})
        _insert(index, encoder, {"id": 3, "name": "Bob", "age": "old"})
        index.flush()
        schema_after_c1 = index.components[0].schema
        age = schema_after_c1.root.child(schema_after_c1.field_name_id("age"))
        assert age.tag is TypeTag.UNION
        assert set(age.options) == {TypeTag.INT64, TypeTag.STRING}
        # the newer schema is a superset of the older one
        assert schema_after_c1.is_superset_of(schema_after_c0)

    def test_records_on_disk_are_compacted(self):
        index, compactor, encoder = _compacting_index()
        record = {"id": 1, "name": "Ann", "tags": ["a", "b"], "profile": {"followers": 10}}
        _insert(index, encoder, record)
        index.flush()
        entry = index.components[0].search(1)
        assert is_compacted(entry.value)
        assert len(entry.value) < len(encoder.encode(record))
        decoded = compactor.decode_record(entry.value, index.components[0].schema)
        assert deep_equals(decoded, record)

    def test_memtable_records_stay_uncompacted(self):
        index, compactor, encoder = _compacting_index()
        _insert(index, encoder, {"id": 1, "name": "Ann"})
        result = index.search(1)
        assert result.from_memory
        assert not is_compacted(result.payload)

    def test_schema_persisted_in_metadata(self):
        index, compactor, encoder = _compacting_index()
        _insert(index, encoder, {"id": 1, "name": "Ann", "age": 30})
        index.flush()
        metadata = index.components[0].metadata
        restored = InferredSchema.from_bytes(metadata.schema_bytes, compactor.datatype)
        assert restored.field_name_id("name") is not None
        assert restored.structurally_equal(compactor.schema)

    def test_merge_keeps_most_recent_schema(self):
        index, compactor, encoder = _compacting_index()
        _insert(index, encoder, {"id": 0, "name": "Kim", "age": 26})
        index.flush()
        _insert(index, encoder, {"id": 3, "name": "Bob", "age": "old", "extra": True})
        index.flush()
        newest_schema = index.components[0].schema
        merged = index.merge(list(index.components))
        assert merged.schema is newest_schema
        restored = InferredSchema.from_bytes(merged.metadata.schema_bytes, compactor.datatype)
        assert restored.structurally_equal(newest_schema)

    def test_flush_counts_tracked(self):
        index, compactor, encoder = _compacting_index()
        for key in range(4):
            _insert(index, encoder, {"id": key, "name": f"user{key}"})
        index.flush()
        assert compactor.flush_count == 1
        assert compactor.records_compacted == 4
        assert compactor.bytes_saved > 0


class TestDeleteAndUpsertMaintenance:
    def test_delete_decrements_schema(self):
        """Figure 10 -> Figure 11: deleting the only rich record prunes the schema."""
        index, compactor, encoder = _compacting_index()
        rich = {"id": 1, "name": "Ann", "dependents": [{"name": "Bob", "age": 6}],
                "branch": "HQ"}
        _insert(index, encoder, rich)
        for key in range(2, 7):
            _insert(index, encoder, {"id": key, "name": f"user{key}"})
        index.flush()
        assert compactor.schema.field_count == 3  # name, dependents, branch

        index.delete(1)
        index.flush()
        assert compactor.schema.field_count == 1
        assert compactor.schema.field_name_id("name") is not None
        remaining = compactor.schema.root.child(compactor.schema.field_name_id("name"))
        assert remaining.counter == 5

    def test_union_collapses_after_deleting_heterogeneous_record(self):
        index, compactor, encoder = _compacting_index()
        _insert(index, encoder, {"id": 0, "name": "Kim", "age": 26})
        _insert(index, encoder, {"id": 3, "name": "Bob", "age": "old"})
        index.flush()
        age = compactor.schema.root.child(compactor.schema.field_name_id("age"))
        assert age.tag is TypeTag.UNION
        index.delete(3)
        index.flush()
        age = compactor.schema.root.child(compactor.schema.field_name_id("age"))
        assert age.tag is TypeTag.INT64

    def test_upsert_carries_antischema_of_old_version(self):
        index, compactor, encoder = _compacting_index()
        _insert(index, encoder, {"id": 1, "name": "Ann", "old_field": 1})
        index.flush()
        assert compactor.schema.field_name_id("old_field") is not None
        _upsert(index, encoder, {"id": 1, "name": "Ann", "new_field": "x"})
        index.flush()
        root = compactor.schema.root
        assert root.child(compactor.schema.field_name_id("old_field")) is None
        assert compactor.schema.field_name_id("new_field") is not None

    def test_upsert_of_new_key_needs_no_decrement(self):
        index, compactor, encoder = _compacting_index()
        _upsert(index, encoder, {"id": 10, "name": "New"})
        index.flush()
        assert compactor.schema.root.counter == 1

    def test_delete_of_memtable_only_record(self):
        """Insert+delete inside one memtable never touches the schema."""
        index, compactor, encoder = _compacting_index()
        _insert(index, encoder, {"id": 1, "name": "Ann", "only_here": True})
        index.delete(1)
        index.flush()
        assert compactor.schema.field_name_id("only_here") is None
        assert index.search(1) is None

    def test_pk_index_limits_lookups_for_fresh_keys(self):
        index, compactor, encoder = _compacting_index(maintain_pk=True)
        for key in range(20):
            _insert(index, encoder, {"id": key, "name": f"u{key}"})
        index.flush()
        before = index.stats.maintenance_point_lookups
        _upsert(index, encoder, {"id": 1000, "name": "fresh"})
        assert index.stats.maintenance_point_lookups == before  # pk index said "absent"
        _upsert(index, encoder, {"id": 3, "name": "existing"})
        assert index.stats.maintenance_point_lookups == before + 1


class TestCompactorRecovery:
    def test_schema_reloaded_from_newest_valid_component(self):
        from repro.lsm import recover_index

        device = SimulatedStorageDevice()
        cache = BufferCache(InMemoryFileManager(device, 2048), 512)
        datatype = open_only_primary_key("EmployeeType")
        encoder = VectorEncoder(datatype)

        compactor = TupleCompactor(datatype)
        index = LSMBTree("emp", 0, cache, 1 << 20, NoMergePolicy(), compactor)
        index.insert(0, {"id": 0, "name": "Kim"}, encoder.encode({"id": 0, "name": "Kim"}))
        index.flush()
        index.insert(1, {"id": 1, "name": "Ann", "age": 5},
                     encoder.encode({"id": 1, "name": "Ann", "age": 5}))
        index.flush()

        fresh_compactor = TupleCompactor(datatype)
        fresh = LSMBTree("emp", 0, cache, 1 << 20, NoMergePolicy(), fresh_compactor)
        report = recover_index(fresh, datatype=datatype)
        assert report.schema_loaded
        assert fresh_compactor.schema.field_name_id("age") is not None
        assert fresh_compactor.schema.field_name_id("name") is not None
        # recovered index can still decode its compacted records
        entry = fresh.search(1)
        decoded = fresh_compactor.decode_record(entry.payload, fresh.components[0].schema)
        assert decoded["age"] == 5
