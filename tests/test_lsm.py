"""Unit tests for the LSM engine: components, flush, merge, policies, recovery."""

import pytest

from repro.errors import ComponentStateError, DuplicateKeyError
from repro.lsm import (
    ComponentId,
    ComponentWriter,
    ConstantMergePolicy,
    FlushCallback,
    LSMBTree,
    NoMergePolicy,
    PrefixMergePolicy,
    make_merge_policy,
    read_component_metadata,
    recover_index,
)
from repro.btree import LeafEntry
from repro.storage import BufferCache, InMemoryFileManager, SimulatedStorageDevice, WriteAheadLog

PAGE_SIZE = 2048


def _cache(capacity=512):
    device = SimulatedStorageDevice()
    manager = InMemoryFileManager(device, PAGE_SIZE)
    return device, BufferCache(manager, capacity)


def _index(memory_budget=4096, merge_policy=None, wal=None, cache=None,
           maintain_primary_key_index=False, check_duplicate_keys=False):
    if cache is None:
        _, cache = _cache()
    return LSMBTree(
        name="ds", partition=0, buffer_cache=cache, memory_budget=memory_budget,
        merge_policy=merge_policy or NoMergePolicy(), wal=wal,
        maintain_primary_key_index=maintain_primary_key_index,
        check_duplicate_keys=check_duplicate_keys,
    )


def _payload(key: int, size: int = 64) -> bytes:
    return (str(key).encode() + b"-") * (size // (len(str(key)) + 1) + 1)


class TestComponentId:
    def test_flushed_and_merged_ids(self):
        c0, c1, c2 = ComponentId.flushed(0), ComponentId.flushed(1), ComponentId.flushed(2)
        merged = ComponentId.merged([c1, c0])
        assert merged.min_seq == 0 and merged.max_seq == 1
        assert str(merged) == "C0-1"
        assert c2.is_newer_than(merged)
        assert ComponentId.merged([merged, c2]).max_seq == 2

    def test_non_adjacent_merge_rejected(self):
        with pytest.raises(ComponentStateError):
            ComponentId.merged([ComponentId.flushed(0), ComponentId.flushed(2)])

    def test_ordering_by_recency(self):
        ids = [ComponentId.flushed(3), ComponentId(0, 2), ComponentId.flushed(4)]
        assert sorted(ids)[-1] == ComponentId.flushed(4)


class TestComponentWriterAndMetadata:
    def test_metadata_roundtrip(self):
        _, cache = _cache()
        writer = ComponentWriter(cache, "comp")
        entries = [LeafEntry(i, _payload(i)) for i in range(50)]
        metadata = writer.write(ComponentId.flushed(0), entries, schema_bytes=b"schema-blob")
        loaded = read_component_metadata(cache, "comp")
        assert loaded is not None
        assert loaded.component_id == ComponentId.flushed(0)
        assert loaded.entry_count == 50
        assert loaded.min_key == 0 and loaded.max_key == 49
        assert loaded.schema_bytes == b"schema-blob"
        assert loaded.btree_info.entry_count == metadata.btree_info.entry_count

    def test_invalid_component_detected(self):
        _, cache = _cache()
        writer = ComponentWriter(cache, "halfdone")
        entries = [LeafEntry(i, _payload(i)) for i in range(10)]
        with pytest.raises(ComponentStateError):
            writer.write(ComponentId.flushed(0), entries, fail_before_footer=True)
        assert read_component_metadata(cache, "halfdone") is None

    def test_missing_file_is_invalid(self):
        _, cache = _cache()
        assert read_component_metadata(cache, "never-created") is None


class TestFlushAndSearch:
    def test_insert_search_before_and_after_flush(self):
        index = _index()
        for key in range(20):
            index.insert(key, {"id": key}, _payload(key))
        assert index.search(5).from_memory
        index.flush()
        assert index.component_count() == 1
        result = index.search(5)
        assert result is not None and not result.from_memory
        assert index.search(99) is None

    def test_automatic_flush_on_budget(self):
        index = _index(memory_budget=1500)
        for key in range(40):
            index.insert(key, {"id": key}, _payload(key))
        assert index.stats.flushes >= 1
        assert index.component_count() >= 1

    def test_flush_empty_memtable_is_noop(self):
        index = _index()
        assert index.flush() is None

    def test_duplicate_key_check(self):
        index = _index(check_duplicate_keys=True)
        index.insert(1, {"id": 1}, _payload(1))
        with pytest.raises(DuplicateKeyError):
            index.insert(1, {"id": 1}, _payload(1))

    def test_delete_creates_antimatter_and_hides_record(self):
        index = _index()
        index.insert(1, {"id": 1}, _payload(1))
        index.flush()
        index.delete(1)
        assert index.search(1) is None
        index.flush()
        assert index.search(1) is None

    def test_upsert_overwrites(self):
        index = _index()
        index.insert(1, {"id": 1, "v": "a"}, b"version-a")
        index.flush()
        index.upsert(1, {"id": 1, "v": "b"}, b"version-b")
        assert index.search(1).payload == b"version-b"
        index.flush()
        assert index.search(1).payload == b"version-b"

    def test_scan_reconciles_recency_and_antimatter(self):
        index = _index()
        for key in range(10):
            index.insert(key, {"id": key}, _payload(key))
        index.flush()
        index.delete(3)
        index.upsert(4, {"id": 4}, b"new-4")
        index.insert(100, {"id": 100}, _payload(100))
        keys = [result.key for result in index.scan()]
        assert keys == [0, 1, 2, 4, 5, 6, 7, 8, 9, 100]
        by_key = {result.key: result for result in index.scan()}
        assert by_key[4].payload == b"new-4"

    def test_storage_size_grows_with_flushes(self):
        index = _index()
        assert index.storage_size() == 0
        for key in range(50):
            index.insert(key, {"id": key}, _payload(key))
        index.flush()
        assert index.storage_size() > 0


class TestBulkLoad:
    def test_load_builds_single_component(self):
        index = _index()
        rows = [(key, {"id": key}, _payload(key)) for key in range(200)]
        index.load(rows)
        assert index.component_count() == 1
        assert index.search(150) is not None
        assert index.record_count() == 200

    def test_load_sorts_input(self):
        index = _index()
        rows = [(key, {"id": key}, _payload(key)) for key in reversed(range(50))]
        index.load(rows)
        assert [r.key for r in index.scan()] == list(range(50))

    def test_load_requires_empty_index(self):
        index = _index()
        index.insert(1, {"id": 1}, _payload(1))
        with pytest.raises(ComponentStateError):
            index.load([(2, {"id": 2}, _payload(2))])

    def test_load_rejects_duplicates(self):
        index = _index()
        with pytest.raises(DuplicateKeyError):
            index.load([(1, {"id": 1}, b"a"), (1, {"id": 1}, b"b")])


class TestMergePolicies:
    def test_no_merge_policy(self):
        assert NoMergePolicy().select_merge([object(), object()]) == []

    def test_constant_policy_threshold(self):
        index = _index(merge_policy=ConstantMergePolicy(3))
        for batch in range(3):
            for key in range(batch * 10, batch * 10 + 10):
                index.insert(key, {"id": key}, _payload(key))
            index.flush()
        # third flush triggers a merge of all three components
        assert index.component_count() == 1
        assert index.stats.merges == 1
        assert index.components[0].component_id.is_merged

    def test_prefix_policy_respects_max_size(self):
        policy = PrefixMergePolicy(max_mergable_component_size=10_000,
                                   max_tolerable_component_count=2)

        class FakeComponent:
            def __init__(self, size):
                self._size = size

            def size_bytes(self):
                return self._size

        small = [FakeComponent(1000), FakeComponent(1000)]
        assert len(policy.select_merge(small)) == 2
        with_large_old = small + [FakeComponent(50_000)]
        assert len(policy.select_merge(with_large_old)) == 2
        large_first = [FakeComponent(50_000)] + small
        assert policy.select_merge(large_first) == []

    def test_make_merge_policy(self):
        assert isinstance(make_merge_policy("prefix", 1, 2), PrefixMergePolicy)
        assert isinstance(make_merge_policy("constant", 1, 2), ConstantMergePolicy)
        assert isinstance(make_merge_policy("none", 1, 2), NoMergePolicy)
        with pytest.raises(Exception):
            make_merge_policy("bogus", 1, 2)


class TestMergeSemantics:
    def test_merge_garbage_collects_annihilated_pairs(self):
        """Figure 4b: a record and its anti-matter annihilate during the merge."""
        index = _index()
        index.insert(0, {"id": 0}, _payload(0))
        index.insert(1, {"id": 1}, _payload(1))
        index.flush()
        index.delete(0)
        index.insert(2, {"id": 2}, _payload(2))
        index.flush()
        assert index.component_count() == 2
        merged = index.merge(list(index.components))
        assert index.component_count() == 1
        keys = [entry.key for entry in merged.scan()]
        assert keys == [1, 2]
        assert all(not entry.is_antimatter for entry in merged.scan())

    def test_merge_keeps_antimatter_when_older_components_remain(self):
        index = _index()
        index.insert(0, {"id": 0}, _payload(0))
        index.flush()
        index.delete(0)
        index.flush()
        index.insert(5, {"id": 5}, _payload(5))
        index.flush()
        assert index.component_count() == 3
        # merge only the two newest components (C1: antimatter for 0, C2: insert 5)
        merged = index.merge(index.components[:2])
        assert index.component_count() == 2
        entries = list(merged.scan())
        assert any(entry.is_antimatter and entry.key == 0 for entry in entries)
        # the deleted record must remain invisible
        assert index.search(0) is None

    def test_merged_component_files_replace_old_ones(self):
        index = _index()
        manager = index.buffer_cache.file_manager
        for batch in range(2):
            for key in range(batch * 5, batch * 5 + 5):
                index.insert(key, {"id": key}, _payload(key))
            index.flush()
        old_files = set(manager.list_files())
        index.merge(list(index.components))
        new_files = set(manager.list_files())
        assert len(new_files) == 1
        assert not old_files & new_files

    def test_merge_preserves_all_live_records(self):
        index = _index(merge_policy=ConstantMergePolicy(4))
        for key in range(400):
            index.insert(key, {"id": key}, _payload(key))
            if key % 100 == 99:
                index.flush()
        index.flush()
        assert sorted(r.key for r in index.scan()) == list(range(400))


class TestPrimaryKeyIndex:
    def test_pk_index_answers_existence(self):
        index = _index(maintain_primary_key_index=True)
        for key in range(30):
            index.insert(key, {"id": key}, _payload(key))
        index.flush()
        component = index.components[0]
        assert component.primary_key_index is not None
        assert component.key_may_exist(7)
        assert not component.key_may_exist(999)

    def test_pk_index_smaller_than_primary(self):
        index = _index(maintain_primary_key_index=True)
        for key in range(100):
            index.insert(key, {"id": key}, _payload(key, size=256))
        index.flush()
        component = index.components[0]
        manager = index.buffer_cache.file_manager
        assert manager.file_size(component.primary_key_file) < manager.file_size(component.file_name)


class TestWALAndRecovery:
    def test_wal_truncated_after_flush(self):
        wal = WriteAheadLog()
        index = _index(wal=wal)
        for key in range(10):
            index.insert(key, {"id": key}, _payload(key))
        assert len(wal) > 0
        index.flush()
        assert list(wal.replay(dataset="ds", partition=0)) == []

    def test_recovery_replays_unflushed_records(self):
        _, cache = _cache()
        wal = WriteAheadLog()
        index = _index(wal=wal, cache=cache)
        for key in range(10):
            index.insert(key, {"id": key}, _payload(key))
        index.flush()
        for key in range(10, 16):
            index.insert(key, {"id": key}, _payload(key))
        # crash: lose the memtable, keep files + WAL
        fresh = _index(wal=wal, cache=cache)
        report = recover_index(fresh, wal=wal, payload_decoder=lambda payload: {"raw": True})
        assert report.valid_components == 1
        assert report.replayed_log_records == 6
        assert report.flushed_after_replay
        assert sorted(r.key for r in fresh.scan()) == list(range(16))

    def test_recovery_removes_invalid_component(self):
        _, cache = _cache()
        wal = WriteAheadLog()
        index = _index(wal=wal, cache=cache)
        for key in range(8):
            index.insert(key, {"id": key}, _payload(key))
        with pytest.raises(ComponentStateError):
            index.flush(fail_before_footer=True)  # crash mid-flush
        fresh = _index(wal=wal, cache=cache)
        report = recover_index(fresh, wal=wal, payload_decoder=lambda payload: {"raw": True})
        assert report.invalid_components_removed == 1
        assert report.valid_components == 0      # nothing valid survived the crash
        assert report.flushed_after_replay       # ...but the WAL replay re-flushed it
        assert fresh.component_count() == 1
        assert sorted(r.key for r in fresh.scan()) == list(range(8))

    def test_recovery_without_wal_only_discovers_components(self):
        _, cache = _cache()
        index = _index(cache=cache)
        for key in range(5):
            index.insert(key, {"id": key}, _payload(key))
        index.flush()
        fresh = _index(cache=cache)
        report = recover_index(fresh)
        assert report.valid_components == 1
        assert report.replayed_log_records == 0
        assert sorted(r.key for r in fresh.scan()) == list(range(5))
