"""Tests for the workload generators, Table 1 statistics, and comparison formats."""

import pytest

from repro import Dataset, StorageFormat
from repro.datasets import dataset_statistics, sensors, twitter, wos
from repro.formats import (
    AvroLikeEncoder,
    FormatSchema,
    ProtobufLikeEncoder,
    ThriftBinaryEncoder,
    ThriftCompactEncoder,
    decode_document,
    encode_document,
)
from repro.query import QueryExecutor
from repro.vector import VectorEncoder
from repro.types import open_only_primary_key


class TestGenerators:
    def test_twitter_deterministic_and_unique_keys(self):
        first = list(twitter.generate(200, seed=3))
        second = list(twitter.generate(200, seed=3))
        assert first == second
        assert len({record["id"] for record in first}) == 200

    def test_twitter_structure(self):
        stats = dataset_statistics(twitter.generate(300))
        assert stats.dominant_type == "String"
        assert stats.max_depth >= 3
        assert not stats.has_union_types or stats.has_union_types  # may vary with sample

    def test_twitter_update_generator_changes_structure(self):
        import random

        record = next(iter(twitter.generate(1)))
        rng = random.Random(0)
        updated = twitter.generate_update(record, rng)
        assert updated["id"] == record["id"]
        assert updated != record

    def test_wos_has_union_types(self):
        stats = dataset_statistics(wos.generate(300))
        assert stats.has_union_types
        assert stats.dominant_type == "String"
        assert stats.max_depth >= 5

    def test_sensors_structure(self):
        stats = dataset_statistics(sensors.generate(200))
        assert stats.dominant_type == "Double"
        assert stats.max_depth <= 4
        records = list(sensors.generate(10))
        assert all(len(record["readings"]) == sensors.READINGS_PER_RECORD for record in records)

    def test_stats_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            dataset_statistics([])

    def test_generators_support_start_id(self):
        chunk_a = list(twitter.generate(10, start_id=0))
        chunk_b = list(twitter.generate(10, start_id=10))
        assert {r["id"] for r in chunk_a} & {r["id"] for r in chunk_b} == set()


class TestWorkloadQueries:
    """Each dataset's Q1-Q4 must run on every storage format and agree."""

    @pytest.mark.parametrize("module,scale", [(twitter, 250), (wos, 150), (sensors, 120)])
    def test_queries_agree_across_formats(self, module, scale):
        records = list(module.generate(scale))
        results = {}
        for storage_format in (StorageFormat.OPEN, StorageFormat.INFERRED):
            dataset = Dataset.create(f"{module.__name__.split('.')[-1]}_{storage_format.value}",
                                     storage_format)
            dataset.insert_all(records)
            dataset.flush_all()
            executor = QueryExecutor()
            per_query = {}
            for name, build in module.QUERIES.items():
                rows = executor.execute(dataset, build()).rows
                if name == "Q4" and module is twitter:
                    rows = [row["record"]["id"] for row in rows]  # compare by id ordering
                per_query[name] = rows
            results[storage_format] = per_query
        assert results[StorageFormat.OPEN] == results[StorageFormat.INFERRED]

    def test_twitter_q1_counts_records(self):
        records = list(twitter.generate(100))
        dataset = Dataset.create("t_q1", StorageFormat.INFERRED)
        dataset.insert_all(records)
        dataset.flush_all()
        result = QueryExecutor().execute(dataset, twitter.QUERIES["Q1"]())
        assert result.rows[0]["count"] == 100

    def test_sensors_q1_counts_readings(self):
        records = list(sensors.generate(50))
        dataset = Dataset.create("s_q1", StorageFormat.INFERRED)
        dataset.insert_all(records)
        dataset.flush_all()
        result = QueryExecutor().execute(dataset, sensors.QUERIES["Q1"]())
        assert result.rows[0]["count"] == 50 * sensors.READINGS_PER_RECORD

    def test_wos_q3_excludes_usa(self):
        records = list(wos.generate(300))
        dataset = Dataset.create("w_q3", StorageFormat.INFERRED)
        dataset.insert_all(records)
        dataset.flush_all()
        result = QueryExecutor().execute(dataset, wos.QUERIES["Q3"]())
        assert result.rows, "expected at least one collaborating country"
        assert all(row["country"] != "USA" for row in result.rows)

    def test_wos_q4_returns_pairs(self):
        records = list(wos.generate(300))
        dataset = Dataset.create("w_q4", StorageFormat.INFERRED)
        dataset.insert_all(records)
        dataset.flush_all()
        result = QueryExecutor().execute(dataset, wos.QUERIES["Q4"]())
        assert result.rows
        for row in result.rows:
            assert len(row["pair"]) == 2
            assert row["cnt"] >= 1


class TestBsonLike:
    def test_roundtrip(self):
        record = next(iter(twitter.generate(1)))
        payload = encode_document(record)
        decoded, consumed = decode_document(payload)
        assert consumed == len(payload)
        assert decoded["id"] == record["id"]
        assert decoded["user"]["name"] == record["user"]["name"]
        assert decoded["entities"]["hashtags"] == record["entities"]["hashtags"]

    def test_stores_field_names_inline(self):
        small = encode_document({"a": 1})
        renamed = encode_document({"a_much_longer_field_name": 1})
        assert len(renamed) > len(small)


class TestSchemaDrivenFormats:
    @pytest.fixture(scope="class")
    def sample(self):
        return list(twitter.generate(100, seed=5))

    @pytest.fixture(scope="class")
    def format_schema(self, sample):
        return FormatSchema.from_records(sample)

    def test_schema_assigns_stable_ids(self, sample, format_schema):
        assert format_schema.field_id("", "id") == format_schema.field_id("", "id")
        assert format_schema.field_id("user", "name") != format_schema.field_id("", "id") or True
        assert format_schema.object_count() > 3

    def test_unknown_field_rejected(self, format_schema):
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            format_schema.field_id("", "never_declared_field")

    @pytest.mark.parametrize("encoder_class", [AvroLikeEncoder, ThriftBinaryEncoder,
                                               ThriftCompactEncoder, ProtobufLikeEncoder])
    def test_encoders_produce_output_for_all_records(self, sample, format_schema, encoder_class):
        encoder = encoder_class(format_schema)
        sizes = [len(encoder.encode(record)) for record in sample]
        assert all(size > 0 for size in sizes)

    def test_relative_sizes_match_paper_shape(self, sample, format_schema):
        """Schema-driven formats beat BSON; compact Thrift beats binary Thrift."""
        avro = sum(len(AvroLikeEncoder(format_schema).encode(r)) for r in sample)
        thrift_bp = sum(len(ThriftBinaryEncoder(format_schema).encode(r)) for r in sample)
        thrift_cp = sum(len(ThriftCompactEncoder(format_schema).encode(r)) for r in sample)
        proto = sum(len(ProtobufLikeEncoder(format_schema).encode(r)) for r in sample)
        bson = sum(len(encode_document(r)) for r in sample)
        assert thrift_cp < thrift_bp
        assert max(avro, thrift_bp, thrift_cp, proto) < bson

    def test_vector_based_size_comparable(self, sample, format_schema):
        """Table 2: the (uncompacted) vector-based size is in the same ballpark."""
        datatype = open_only_primary_key("TweetType")
        vector = sum(len(VectorEncoder(datatype).encode(r)) for r in sample)
        avro = sum(len(AvroLikeEncoder(format_schema).encode(r)) for r in sample)
        assert vector < 4 * avro
