"""Unit tests for schema inference, maintenance, and serialization."""

import pytest

from repro.errors import SchemaError
from repro.schema import (
    CollectionNode,
    FieldNameDictionary,
    InferredSchema,
    ObjectNode,
    ScalarNode,
    UnionNode,
    extract_antischema,
    leaf_paths,
    nodes_equal,
)
from repro.types import (
    ADate,
    AMultiset,
    APoint,
    TypeTag,
    open_only_primary_key,
)

PAPER_FIGURE10_RECORD = {
    "id": 1,
    "name": "Ann",
    "dependents": AMultiset([
        {"name": "Bob", "age": 6},
        {"name": "Carol", "age": 10},
    ]),
    "employment_date": ADate.from_iso("2018-09-20"),
    "branch_location": APoint(24.0, -56.12),
    "working_shifts": [[8, 16], [9, 17], [10, 18], "on_call"],
}

SIMPLE_RECORDS = [{"id": i, "name": f"user{i}"} for i in range(2, 7)]


def _employee_schema():
    return InferredSchema(open_only_primary_key("EmployeeType"))


class TestFieldNameDictionary:
    def test_ids_start_at_one_and_are_stable(self):
        dictionary = FieldNameDictionary()
        assert dictionary.encode("name") == 1
        assert dictionary.encode("age") == 2
        assert dictionary.encode("name") == 1
        assert dictionary.decode(2) == "age"

    def test_lookup_does_not_assign(self):
        dictionary = FieldNameDictionary()
        assert dictionary.lookup("nope") is None
        assert len(dictionary) == 0

    def test_unknown_id_raises(self):
        dictionary = FieldNameDictionary()
        with pytest.raises(SchemaError):
            dictionary.decode(1)

    def test_serialization_roundtrip(self):
        dictionary = FieldNameDictionary()
        for name in ["name", "dependents", "age", "employment_date"]:
            dictionary.encode(name)
        payload = dictionary.to_bytes()
        restored, consumed = FieldNameDictionary.from_bytes(payload)
        assert consumed == len(payload)
        assert list(restored.items()) == list(dictionary.items())

    def test_prefix_check(self):
        base = FieldNameDictionary()
        base.encode("a")
        extended = base.copy()
        extended.encode("b")
        assert base.is_prefix_of(extended)
        assert not extended.is_prefix_of(base)


class TestInference:
    def test_figure10_structure(self):
        """Reproduces the paper's Figure 10: one rich record + five simple ones."""
        schema = _employee_schema()
        schema.observe(PAPER_FIGURE10_RECORD)
        schema.observe_all(SIMPLE_RECORDS)

        root = schema.root
        assert root.counter == 6
        name_id = schema.field_name_id("name")
        assert isinstance(root.child(name_id), ScalarNode)
        assert root.child(name_id).counter == 6
        # "id" is declared -> not inferred.
        assert schema.field_name_id("id") is None

        dependents = root.child(schema.field_name_id("dependents"))
        assert isinstance(dependents, CollectionNode)
        assert dependents.tag is TypeTag.MULTISET
        assert isinstance(dependents.item, ObjectNode)
        assert dependents.item.counter == 2  # two dependent objects observed

        shifts = root.child(schema.field_name_id("working_shifts"))
        assert isinstance(shifts, CollectionNode)
        assert isinstance(shifts.item, UnionNode)
        assert set(shifts.item.options) == {TypeTag.ARRAY, TypeTag.STRING}
        assert shifts.item.option(TypeTag.ARRAY).counter == 3
        assert shifts.item.option(TypeTag.STRING).counter == 1

    def test_field_name_canonicalization(self):
        """'name' at the root and inside dependents shares one FieldNameID."""
        schema = _employee_schema()
        schema.observe(PAPER_FIGURE10_RECORD)
        # name, dependents, age, employment_date, branch_location, working_shifts;
        # the nested "name" inside dependents reuses the root "name"'s id.
        assert len(schema.dictionary) == 6
        name_id = schema.field_name_id("name")
        dependents = schema.root.child(schema.field_name_id("dependents"))
        assert name_id in dependents.item.fields

    def test_union_promotion_on_type_change(self):
        """Figure 9b: age switches from int to union(int, string)."""
        schema = _employee_schema()
        schema.observe({"id": 0, "name": "Kim", "age": 26})
        schema.observe({"id": 1, "name": "John", "age": 22})
        schema.observe({"id": 2, "name": "Ann"})
        schema.observe({"id": 3, "name": "Bob", "age": "old"})

        age = schema.root.child(schema.field_name_id("age"))
        assert isinstance(age, UnionNode)
        assert set(age.options) == {TypeTag.INT64, TypeTag.STRING}
        assert age.option(TypeTag.INT64).counter == 2
        assert age.option(TypeTag.STRING).counter == 1
        assert age.counter == 3

    def test_superset_property(self):
        """Each newly inferred schema is a superset of the previous one."""
        schema = _employee_schema()
        schema.observe({"id": 0, "name": "Kim", "age": 26})
        first = schema.snapshot()
        schema.observe({"id": 3, "name": "Bob", "age": "old", "extra": [1.5]})
        assert schema.is_superset_of(first)
        assert not first.is_superset_of(schema)

    def test_observe_rejects_non_objects(self):
        with pytest.raises(SchemaError):
            _employee_schema().observe([1, 2, 3])

    def test_null_fields_are_tracked(self):
        schema = _employee_schema()
        schema.observe({"id": 1, "maybe": None})
        node = schema.root.child(schema.field_name_id("maybe"))
        assert isinstance(node, ScalarNode)
        assert node.tag is TypeTag.NULL


class TestMaintenance:
    def test_delete_shrinks_schema_to_figure11(self):
        """Figure 11: deleting the rich record leaves only 'name' behind."""
        schema = _employee_schema()
        schema.observe(PAPER_FIGURE10_RECORD)
        schema.observe_all(SIMPLE_RECORDS)

        schema.remove(extract_antischema(PAPER_FIGURE10_RECORD))

        root = schema.root
        assert root.counter == 5
        remaining_ids = set(root.fields)
        assert remaining_ids == {schema.field_name_id("name")}
        assert root.child(schema.field_name_id("name")).counter == 5

    def test_union_collapses_after_delete(self):
        """Deleting the only string-aged record turns union(int,string) into int."""
        schema = _employee_schema()
        schema.observe({"id": 0, "name": "Kim", "age": 26})
        schema.observe({"id": 3, "name": "Bob", "age": "old"})
        schema.remove(extract_antischema({"id": 3, "name": "Bob", "age": "old"}))

        age = schema.root.child(schema.field_name_id("age"))
        assert isinstance(age, ScalarNode)
        assert age.tag is TypeTag.INT64
        assert age.counter == 1

    def test_remove_unknown_field_raises(self):
        schema = _employee_schema()
        schema.observe({"id": 0, "name": "Kim"})
        with pytest.raises(SchemaError):
            schema.remove({"never_seen": 1})

    def test_remove_then_observe_again(self):
        schema = _employee_schema()
        record = {"id": 1, "tags": ["a", "b"]}
        schema.observe(record)
        schema.remove(extract_antischema(record))
        assert schema.field_count == 0
        schema.observe(record)
        tags = schema.root.child(schema.field_name_id("tags"))
        assert isinstance(tags, CollectionNode)
        assert tags.counter == 1

    def test_counter_underflow_detected(self):
        schema = _employee_schema()
        record = {"id": 1, "name": "Ann"}
        schema.observe(record)
        schema.remove(extract_antischema(record))
        with pytest.raises(SchemaError):
            schema.remove(extract_antischema(record))


class TestAntischema:
    def test_scalars_replaced_with_placeholders(self):
        anti = extract_antischema(PAPER_FIGURE10_RECORD)
        assert anti["name"] == ""
        assert anti["id"] == 0
        assert anti["employment_date"] == ADate(0)
        assert anti["working_shifts"][3] == ""
        assert anti["dependents"].items[0] == {"name": "", "age": 0}

    def test_antischema_preserves_types(self):
        from repro.types import type_tag_of

        anti = extract_antischema({"a": 1.5, "b": "text", "c": [True]})
        assert type_tag_of(anti["a"]) is TypeTag.DOUBLE
        assert type_tag_of(anti["b"]) is TypeTag.STRING
        assert type_tag_of(anti["c"][0]) is TypeTag.BOOLEAN


class TestMergeAndSnapshot:
    def test_merge_newest_picks_latest_version(self):
        schema = _employee_schema()
        schema.observe({"id": 0, "name": "Kim", "age": 26})
        snapshot_0 = schema.snapshot()
        schema.observe({"id": 3, "name": "Bob", "age": "old"})
        snapshot_1 = schema.snapshot()
        newest = InferredSchema.merge_newest([snapshot_0, snapshot_1])
        assert newest is snapshot_1
        assert newest.is_superset_of(snapshot_0)

    def test_merge_empty_raises(self):
        with pytest.raises(SchemaError):
            InferredSchema.merge_newest([])

    def test_snapshot_is_independent(self):
        schema = _employee_schema()
        schema.observe({"id": 0, "name": "Kim"})
        frozen = schema.snapshot()
        schema.observe({"id": 1, "name": "Ann", "new_field": 1})
        assert frozen.field_name_id("new_field") is None
        assert schema.field_name_id("new_field") is not None


class TestSerialization:
    def test_roundtrip(self):
        schema = _employee_schema()
        schema.observe(PAPER_FIGURE10_RECORD)
        schema.observe_all(SIMPLE_RECORDS)
        payload = schema.to_bytes()
        restored = InferredSchema.from_bytes(payload, schema.datatype)
        assert restored.structurally_equal(schema, compare_counters=True)
        assert restored.version == schema.version
        assert list(restored.dictionary.items()) == list(schema.dictionary.items())

    def test_roundtrip_with_unions(self):
        schema = _employee_schema()
        schema.observe({"id": 0, "v": 1})
        schema.observe({"id": 1, "v": "s"})
        schema.observe({"id": 2, "v": [1.0]})
        restored = InferredSchema.from_bytes(schema.to_bytes(), schema.datatype)
        node = restored.root.child(restored.field_name_id("v"))
        assert isinstance(node, UnionNode)
        assert set(node.options) == {TypeTag.INT64, TypeTag.STRING, TypeTag.ARRAY}

    def test_describe_contains_field_names(self):
        schema = _employee_schema()
        schema.observe({"id": 0, "name": "Kim", "age": 26})
        text = schema.describe()
        assert "name" in text and "age" in text


class TestNodes:
    def test_nodes_equal_ignores_counters_by_default(self):
        left, right = ScalarNode(TypeTag.INT64, 5), ScalarNode(TypeTag.INT64, 9)
        assert nodes_equal(left, right)
        assert not nodes_equal(left, right, compare_counters=True)

    def test_leaf_paths(self):
        schema = _employee_schema()
        schema.observe({"id": 1, "a": {"b": 2}, "c": [3.5]})
        paths = dict(leaf_paths(schema.root, schema.dictionary))
        assert paths[("a", "b")] is TypeTag.INT64
        assert paths[("c", "[]")] is TypeTag.DOUBLE

    def test_scalar_node_rejects_nested_tag(self):
        with pytest.raises(SchemaError):
            ScalarNode(TypeTag.OBJECT)

    def test_collection_node_rejects_scalar_tag(self):
        with pytest.raises(SchemaError):
            CollectionNode(TypeTag.INT64)

    def test_node_count(self):
        schema = _employee_schema()
        schema.observe({"id": 1, "a": {"b": 2}, "c": [3.5]})
        # root + a + b + c + item
        assert schema.root.node_count() == 5
