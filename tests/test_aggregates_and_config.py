"""Additional unit tests: aggregates, configuration validation, plan building."""

import pytest

from repro.config import (
    ClusterConfig,
    DatasetConfig,
    DEVICE_PROFILES,
    DeviceKind,
    LSMConfig,
    StorageConfig,
    StorageFormat,
)
from repro.errors import QueryError
from repro.query import get_aggregate, scan
from repro.query.aggregates import AvgAggregate, CountAggregate, ListifyAggregate
from repro.query.plan import AggregateSpec
from repro.query.operators import merge_partials, order_and_limit
from repro.query import field, lit, Comparison
from repro.types import MISSING


class TestAggregates:
    def test_count_ignores_missing_and_null(self):
        count = CountAggregate()
        state = count.create()
        for value in (1, None, MISSING, "x"):
            state = count.accumulate(state, value)
        assert count.finalize(state) == 2

    def test_avg_merges_partials(self):
        avg = AvgAggregate()
        left = avg.create()
        right = avg.create()
        for value in (2, 4):
            left = avg.accumulate(left, value)
        for value in (6,):
            right = avg.accumulate(right, value)
        assert avg.finalize(avg.merge(left, right)) == 4.0

    def test_avg_of_nothing_is_null(self):
        avg = AvgAggregate()
        assert avg.finalize(avg.create()) is None

    def test_min_max_sum(self):
        for name, values, expected in (("min", [3, 1, 2], 1),
                                       ("max", [3, 1, 2], 3),
                                       ("sum", [3, 1, 2], 6)):
            aggregate = get_aggregate(name)
            state = aggregate.create()
            for value in values:
                state = aggregate.accumulate(state, value)
            assert aggregate.finalize(state) == expected

    def test_listify_collects_and_merges(self):
        listify = ListifyAggregate()
        left = listify.accumulate(listify.create(), "a")
        right = listify.accumulate(listify.create(), "b")
        assert listify.finalize(listify.merge(left, right)) == ["a", "b"]

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            get_aggregate("median")

    def test_merge_partials_across_partitions(self):
        specs = [AggregateSpec("n", "count", None)]
        partials = [{("a",): [2]}, {("a",): [3], ("b",): [1]}]
        merged = merge_partials(partials, specs)
        assert merged[("a",)] == [5]
        assert merged[("b",)] == [1]


class TestPlanBuilder:
    def test_count_star_build(self):
        spec = scan("t").count_star().build()
        assert spec.is_aggregation and spec.repartitions

    def test_default_projection_is_whole_record(self):
        spec = scan("t").build()
        assert spec.projections[0][0] == "record"

    def test_double_where_rejected(self):
        builder = scan("t").where(Comparison("=", field("t", "a"), lit(1)))
        with pytest.raises(QueryError):
            builder.where(Comparison("=", field("t", "b"), lit(2)))

    def test_bad_limit_rejected(self):
        with pytest.raises(QueryError):
            scan("t").limit(0)

    def test_aggregate_requires_argument(self):
        with pytest.raises(QueryError):
            scan("t").aggregate("a", "avg", None).build()

    def test_order_and_limit_on_rows(self):
        spec = (scan("t").group_by(("k", field("t", "k")))
                .aggregate("n", "count", None)
                .order_by("n", descending=True).limit(2).build())
        rows = [{"k": "a", "n": 3}, {"k": "b", "n": 9}, {"k": "c", "n": 5}]
        ordered = order_and_limit(rows, spec)
        assert [row["k"] for row in ordered] == ["b", "c"]


class TestConfig:
    def test_inferred_format_implies_compactor(self):
        config = DatasetConfig(name="d", storage_format=StorageFormat.INFERRED)
        assert config.tuple_compactor_enabled

    def test_compactor_requires_vector_format(self):
        with pytest.raises(ValueError):
            DatasetConfig(name="d", storage_format=StorageFormat.OPEN,
                          tuple_compactor_enabled=True)

    def test_dataset_config_validation(self):
        with pytest.raises(ValueError):
            DatasetConfig(name="")
        with pytest.raises(ValueError):
            DatasetConfig(name="d", primary_key="")

    def test_storage_config_validation(self):
        with pytest.raises(ValueError):
            StorageConfig(page_size=64)
        with pytest.raises(ValueError):
            StorageConfig(buffer_cache_pages=0)

    def test_cluster_config(self):
        assert ClusterConfig(node_count=3, partitions_per_node=2).total_partitions == 6
        with pytest.raises(ValueError):
            ClusterConfig(node_count=0)

    def test_device_profiles_match_paper(self):
        sata = DEVICE_PROFILES[DeviceKind.SATA_SSD]
        nvme = DEVICE_PROFILES[DeviceKind.NVME_SSD]
        assert sata["read_bandwidth"] == 550 * 1024 * 1024
        assert nvme["read_bandwidth"] == 3400 * 1024 * 1024
        assert nvme["read_bandwidth"] > sata["read_bandwidth"]

    def test_storage_format_helpers(self):
        assert StorageFormat.INFERRED.uses_vector_format
        assert StorageFormat.SL_VB.uses_vector_format
        assert not StorageFormat.OPEN.uses_vector_format
        assert StorageFormat.INFERRED.compacts_records
        assert not StorageFormat.SL_VB.compacts_records

    def test_lsm_config_defaults(self):
        config = LSMConfig()
        assert config.merge_policy == "prefix"
        assert config.maintain_primary_key_index
