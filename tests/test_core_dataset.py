"""Integration tests for the Dataset/Partition public API."""

import pytest

from repro import Dataset, DeviceKind, StorageEnvironment, StorageFormat
from repro.config import DatasetConfig, LSMConfig, StorageConfig
from repro.core.dataset import hash_partition
from repro.errors import DatasetError
from repro.types import deep_equals

RECORDS = [
    {"id": i, "name": f"user{i}", "age": 20 + i % 50,
     "tags": [f"t{i % 3}", f"t{i % 5}"],
     "profile": {"followers": i * 7, "verified": i % 10 == 0}}
    for i in range(200)
]


def _dataset(storage_format, compression=None, partitions=1, **overrides):
    environment = StorageEnvironment.for_device(DeviceKind.NVME_SSD, compression=compression,
                                                page_size=4096, buffer_cache_pages=512)
    return Dataset.create("users", storage_format, environment=environment,
                          partitions=partitions, **overrides)


class TestHashPartitioning:
    def test_deterministic(self):
        assert hash_partition(42, 4) == hash_partition(42, 4)
        assert hash_partition("abc", 8) == hash_partition("abc", 8)

    def test_within_range_and_spread(self):
        assignments = {hash_partition(key, 6) for key in range(1000)}
        assert assignments == set(range(6))


@pytest.mark.parametrize("storage_format", [StorageFormat.OPEN, StorageFormat.CLOSED,
                                            StorageFormat.INFERRED, StorageFormat.SL_VB])
class TestRoundTripAllFormats:
    def test_insert_flush_get(self, storage_format):
        if storage_format is StorageFormat.CLOSED:
            from repro.types import Datatype

            datatype = Datatype.from_example("UserType", RECORDS[0], primary_key="id")
            dataset = Dataset.create("users", storage_format, datatype=datatype)
        else:
            dataset = _dataset(storage_format)
        dataset.insert_all(RECORDS)
        dataset.flush_all()
        for probe in (0, 57, 199):
            assert deep_equals(dataset.get(probe), RECORDS[probe])
        assert dataset.get(5000) is None
        assert dataset.count() == len(RECORDS)

    def test_scan_returns_all_records(self, storage_format):
        dataset = _dataset(storage_format) if storage_format is not StorageFormat.CLOSED else None
        if dataset is None:
            pytest.skip("covered by insert_flush_get")
        dataset.insert_all(RECORDS)
        dataset.flush_all()
        scanned = {record["id"] for record in dataset.scan()}
        assert scanned == {record["id"] for record in RECORDS}


class TestDatasetBehaviour:
    def test_storage_size_ordering_matches_paper(self):
        """open > sl-vb ~ closed > inferred on nested, name-heavy records."""
        sizes = {}
        for storage_format in (StorageFormat.OPEN, StorageFormat.INFERRED, StorageFormat.SL_VB):
            dataset = _dataset(storage_format)
            dataset.insert_all(RECORDS)
            dataset.flush_all()
            sizes[storage_format] = dataset.storage_size()
        assert sizes[StorageFormat.INFERRED] < sizes[StorageFormat.SL_VB] < sizes[StorageFormat.OPEN]

    def test_compression_reduces_size(self):
        plain = _dataset(StorageFormat.OPEN)
        compressed = _dataset(StorageFormat.OPEN, compression="snappy")
        for dataset in (plain, compressed):
            dataset.insert_all(RECORDS)
            dataset.flush_all()
        assert compressed.storage_size() < plain.storage_size()

    def test_upsert_and_delete(self):
        dataset = _dataset(StorageFormat.INFERRED)
        dataset.insert_all(RECORDS[:50])
        dataset.flush_all()
        dataset.upsert({"id": 10, "name": "changed", "brand_new_field": 1})
        dataset.delete(11)
        dataset.flush_all()
        assert dataset.get(10)["name"] == "changed"
        assert dataset.get(11) is None
        assert dataset.count() == 49

    def test_multi_partition_distribution(self):
        dataset = _dataset(StorageFormat.INFERRED, partitions=4)
        dataset.insert_all(RECORDS)
        dataset.flush_all()
        per_partition = [partition.record_count() for partition in dataset.partitions]
        assert sum(per_partition) == len(RECORDS)
        assert all(count > 0 for count in per_partition)
        # per-partition schemas were inferred independently yet look alike
        schemas = dataset.schemas()
        assert all(schema is not None for schema in schemas.values())

    def test_bare_constructor_syncs_environment_storage_config(self):
        """Regression: Dataset(config, envs) — not just Dataset.create — must
        carry the environment's StorageConfig into dataset.config.storage, or
        the access-path cost model prices against the wrong device profile
        and page size."""
        environment = StorageEnvironment(StorageConfig(
            page_size=4096, device_kind=DeviceKind.SATA_SSD))
        dataset = Dataset(DatasetConfig(name="bare"), [environment])
        assert dataset.config.storage is environment.config
        assert dataset.config.storage.device_kind is DeviceKind.SATA_SSD
        assert dataset.config.storage.page_size == 4096
        # Dataset.create keeps doing the same thing.
        created = Dataset.create("created", environment=StorageEnvironment(
            StorageConfig(page_size=8192)))
        assert created.config.storage.page_size == 8192

    def test_bulk_load(self):
        dataset = _dataset(StorageFormat.INFERRED, partitions=2)
        dataset.bulk_load(RECORDS)
        assert dataset.count() == len(RECORDS)
        for partition in dataset.partitions:
            assert partition.index.component_count() == 1
        assert deep_equals(dataset.get(123), RECORDS[123])

    def test_missing_primary_key_rejected(self):
        dataset = _dataset(StorageFormat.OPEN)
        with pytest.raises(DatasetError):
            dataset.insert({"name": "no key"})

    def test_describe_schema(self):
        dataset = _dataset(StorageFormat.INFERRED)
        dataset.insert_all(RECORDS[:20])
        dataset.flush_all()
        text = dataset.describe_schema()
        assert "name" in text and "profile" in text
        open_dataset = _dataset(StorageFormat.OPEN)
        assert "disabled" in open_dataset.describe_schema()

    def test_ingest_stats(self):
        dataset = _dataset(StorageFormat.INFERRED)
        dataset.insert_all(RECORDS[:30])
        dataset.flush_all()
        dataset.upsert(dict(RECORDS[0], name="x"))
        stats = dataset.ingest_stats()
        assert stats["inserts"] == 30
        assert stats["upserts"] == 1
        assert stats["flushes"] >= 1

    def test_secondary_index_range_search(self):
        dataset = _dataset(StorageFormat.INFERRED)
        dataset.create_secondary_index("by_age", ("age",))
        dataset.insert_all(RECORDS)
        dataset.flush_all()
        results = dataset.secondary_range_search("by_age", 30, 35)
        expected = [record for record in RECORDS if 30 <= record["age"] <= 35]
        assert {record["id"] for record in results} == {record["id"] for record in expected}

    def test_secondary_index_on_open_dataset(self):
        dataset = _dataset(StorageFormat.OPEN)
        dataset.create_secondary_index("by_followers", ("profile", "followers"))
        dataset.insert_all(RECORDS[:100])
        dataset.flush_all()
        results = dataset.secondary_range_search("by_followers", 0, 70)
        assert {record["id"] for record in results} == set(range(11))


class TestCrashRecoveryEndToEnd:
    def test_partition_recovery_restores_data_and_schema(self):
        environment = StorageEnvironment()
        dataset = Dataset.create("emp", StorageFormat.INFERRED, environment=environment)
        dataset.insert_all(RECORDS[:40])
        dataset.flush_all()
        dataset.insert_all(RECORDS[40:60])  # not flushed: lives in WAL + memtable

        # simulate a crash: rebuild the dataset object over the same environment
        revived = Dataset.create("emp", StorageFormat.INFERRED, environment=environment)
        for partition in revived.partitions:
            partition.recover()
        assert revived.count() == 60
        assert deep_equals(revived.get(45), RECORDS[45])
        assert revived.describe_schema() != "<no inferred schema: tuple compactor disabled>"
