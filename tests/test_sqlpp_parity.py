"""Parity: every Appendix A query compiled from SQL++ text must return
exactly the rows of its fluent-builder twin (the ISSUE's acceptance bar).

Runs all twelve workload queries (Twitter, WoS, Sensors × Q1–Q4) on the
open, inferred, and closed storage formats, plus the examples' quickstart
query — the textual plan and the builder plan go through the same optimizer
and executor, so their rows must be *identical*, not merely equivalent.
"""

import pytest

from repro import Dataset, StorageFormat, compile_sqlpp
from repro.datasets import sensors, twitter, wos
from repro.query import QueryExecutor

WORKLOADS = {
    "twitter": (twitter, 300),
    "wos": (wos, 150),
    "sensors": (sensors, 90),
}

FORMATS = (StorageFormat.OPEN, StorageFormat.INFERRED, StorageFormat.CLOSED)

_datasets = {}


def _dataset(workload: str, storage_format: StorageFormat) -> Dataset:
    key = (workload, storage_format)
    if key not in _datasets:
        module, count = WORKLOADS[workload]
        dataset = Dataset.create(f"{workload}_{storage_format.value}", storage_format,
                                 partitions=2)
        dataset.insert_all(module.generate(count))
        dataset.flush_all()
        _datasets[key] = dataset
    return _datasets[key]


@pytest.mark.parametrize("storage_format", FORMATS, ids=lambda f: f.value)
@pytest.mark.parametrize("query_name", ("Q1", "Q2", "Q3", "Q4"))
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_text_and_builder_plans_return_identical_rows(workload, query_name,
                                                      storage_format):
    module, _ = WORKLOADS[workload]
    dataset = _dataset(workload, storage_format)
    executor = QueryExecutor()
    builder_rows = executor.execute(dataset, module.QUERIES[query_name]()).rows
    compiled = compile_sqlpp(module.SQLPP[query_name])
    sqlpp_rows = executor.execute(dataset, compiled.spec).rows
    assert sqlpp_rows == builder_rows


@pytest.mark.parametrize("query_name", ("Q1", "Q2", "Q3", "Q4"))
def test_parity_survives_disabled_optimizations(query_name):
    """Text plans also agree under the Figure 23 ablation (rewrites off)."""
    dataset = _dataset("twitter", StorageFormat.INFERRED)
    executor = QueryExecutor(consolidate_field_access=False,
                             pushdown_through_unnest=False)
    builder_rows = executor.execute(dataset, twitter.QUERIES[query_name]()).rows
    sqlpp_rows = executor.execute(dataset,
                                  compile_sqlpp(twitter.SQLPP[query_name]).spec).rows
    assert sqlpp_rows == builder_rows


def test_quickstart_example_query_parity():
    """The query pair shown in examples/quickstart.py stays in lockstep."""
    from repro.query import Func, field, scan

    employees = Dataset.create("Employee", StorageFormat.INFERRED)
    employees.insert({"id": 0, "name": "Kim", "age": 26})
    employees.insert({"id": 1, "name": "John", "age": 22})
    employees.insert({"id": 2, "name": "Ann"})
    employees.flush_all()

    builder_query = (scan("e")
                     .group_by(("name", field("e", "name")))
                     .aggregate("count", "count", None)
                     .aggregate("avg_name_len", "avg", Func("length", field("e", "name")))
                     .order_by("count", descending=True)
                     .build())
    builder_rows = QueryExecutor().execute(employees, builder_query).rows
    text_rows = employees.query("""
        SELECT name, count(*) AS count, avg(length(e.name)) AS avg_name_len
        FROM Employee AS e
        GROUP BY e.name AS name
        ORDER BY count DESC
    """).rows
    assert text_rows == builder_rows


def test_compiled_spec_is_structurally_identical_for_twitter_q2():
    """Beyond row parity: the bound plan is the same plan, field by field."""
    compiled = compile_sqlpp(twitter.SQLPP["Q2"]).spec
    built = twitter.QUERIES["Q2"]()
    assert compiled.record_var == built.record_var
    assert [(n, type(e), getattr(e, "path", None)) for n, e in compiled.group_keys] \
        == [(n, type(e), getattr(e, "path", None)) for n, e in built.group_keys]
    assert [(a.output, a.function) for a in compiled.aggregates] \
        == [(a.output, a.function) for a in built.aggregates]
    assert [(k.expr_or_column, k.descending) for k in compiled.order_by] \
        == [(k.expr_or_column, k.descending) for k in built.order_by]
    assert compiled.limit == built.limit
    assert compiled.repartitions == built.repartitions


def test_multi_partition_schema_broadcast_matches(capfd):
    """Repartitioning text queries trigger the same §3.4.1 schema broadcast."""
    dataset = _dataset("twitter", StorageFormat.INFERRED)
    executor = QueryExecutor()
    text_stats = executor.execute(dataset, compile_sqlpp(twitter.SQLPP["Q2"]).spec).stats
    builder_stats = executor.execute(dataset, twitter.QUERIES["Q2"]()).stats
    assert text_stats.schema_broadcasts == builder_stats.schema_broadcasts == 1
    assert text_stats.schema_broadcast_bytes == builder_stats.schema_broadcast_bytes
