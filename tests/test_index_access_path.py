"""Access-path selection: scan/index parity, lifecycle, and EXPLAIN tests.

The executor may answer a range predicate by a full scan or by probing a
secondary index; whichever the cost model (or a forced override) picks, the
rows must be identical.  The probe path is a *candidate superset* machine —
stale index entries, unindexed memtable records, anti-matter — so these
tests hammer exactly those edges: every storage format, compressed and not,
random/inverted/open-ended ranges, and the full LSM lifecycle (upsert,
delete, flush, merge, crash recovery) against a Python-dict oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, DeviceKind, StorageEnvironment, StorageFormat
from repro.datasets.stats import FieldStatistics
from repro.errors import SqlppError
from repro.query import choose_access_path
from repro.sqlpp import CompiledCreateIndex
from repro.sqlpp import compile as compile_sqlpp
from repro.types import Datatype

RECORD_COUNT = 400
SELECTIVITIES = (0.001, 0.01, 0.1, 0.5)
FORMATS = (StorageFormat.OPEN, StorageFormat.CLOSED, StorageFormat.INFERRED)
COMPRESSIONS = (None, "snappy")


def _records(count=RECORD_COUNT):
    records = []
    for i in range(count):
        record = {"id": i, "ts": 1000 + i * 3, "name": f"user{i}",
                  "nested": {"score": i % 97}, "tags": [f"t{i % 5}"]}
        if i % 7 == 0:
            del record["nested"]          # MISSING indexed field on some records
        records.append(record)
    return records


def _build(storage_format, compression=None, records=None, index=True,
           device=DeviceKind.NVME_SSD):
    records = records if records is not None else _records()
    environment = StorageEnvironment.for_device(device, compression=compression,
                                                page_size=4096, buffer_cache_pages=512)
    datatype = None
    if storage_format is StorageFormat.CLOSED:
        datatype = Datatype.from_records("AccessPathType", records, is_open=True,
                                         primary_key="id")
    dataset = Dataset.create("apaths", storage_format, environment=environment,
                             datatype=datatype)
    if index:
        dataset.create_index("by_ts", "ts")
    dataset.insert_all(records)
    dataset.flush_all()
    return dataset


def _range_query(low, high, low_op=">=", high_op="<="):
    conjuncts = []
    if low is not None:
        conjuncts.append(f"t.ts {low_op} {low}")
    if high is not None:
        conjuncts.append(f"t.ts {high_op} {high}")
    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    return f"SELECT VALUE t.id FROM apaths AS t{where}"


def _rows(dataset, text, access_path):
    result = dataset.query(text, access_path=access_path)
    return sorted(row["value"] for row in result.rows), result


# ---------------------------------------------------------------------------
# parity across selectivities, formats, and compression
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("compression", COMPRESSIONS, ids=["raw", "snappy"])
@pytest.mark.parametrize("storage_format", FORMATS, ids=[f.value for f in FORMATS])
class TestScanIndexParity:
    def test_every_selectivity_is_row_identical(self, storage_format, compression):
        records = _records()
        dataset = _build(storage_format, compression, records)
        timestamps = sorted(record["ts"] for record in records)
        for selectivity in SELECTIVITIES:
            span = max(1, int(len(timestamps) * selectivity))
            low = timestamps[0]
            high = timestamps[min(span, len(timestamps) - 1)]
            text = _range_query(low, high)
            via_index, index_result = _rows(dataset, text, "index")
            via_scan, scan_result = _rows(dataset, text, "scan")
            assert index_result.stats.access_path == "IndexProbe"
            assert scan_result.stats.access_path == "FullScan"
            assert via_index == via_scan
            expected = sorted(record["id"] for record in records
                              if low <= record["ts"] <= high)
            assert via_index == expected

    def test_cost_based_choice_matches_both(self, storage_format, compression):
        records = _records()
        dataset = _build(storage_format, compression, records)
        text = _range_query(1000, 1006)
        auto_rows, _ = _rows(dataset, text, "auto")
        forced_rows, _ = _rows(dataset, text, "scan")
        assert auto_rows == forced_rows == [0, 1, 2]


# ---------------------------------------------------------------------------
# property-based: random (possibly empty / inverted / open-ended) ranges
# ---------------------------------------------------------------------------

_PROPERTY_DATASET = None


def _property_dataset():
    global _PROPERTY_DATASET
    if _PROPERTY_DATASET is None:
        dataset = _build(StorageFormat.INFERRED)
        # Leave the index's blind spots in play: memtable-only records, an
        # upsert that moves an indexed value, and a delete.
        dataset.upsert({"id": 3, "ts": 5000, "name": "moved"})
        dataset.insert({"id": RECORD_COUNT, "ts": 1004, "name": "unflushed"})
        dataset.delete(10)
        _PROPERTY_DATASET = dataset
    return _PROPERTY_DATASET


_bounds = st.one_of(st.none(), st.integers(min_value=900, max_value=2400))


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(low=_bounds, high=_bounds,
       low_op=st.sampled_from([">", ">="]), high_op=st.sampled_from(["<", "<="]))
def test_random_ranges_agree(low, high, low_op, high_op):
    dataset = _property_dataset()
    text = _range_query(low, high, low_op, high_op)
    via_index, _ = _rows(dataset, text, "index")
    via_scan, _ = _rows(dataset, text, "scan")
    assert via_index == via_scan


# ---------------------------------------------------------------------------
# LSM lifecycle: the probe stays correct through every state transition
# ---------------------------------------------------------------------------

class TestLsmLifecycle:
    LOW, HIGH = 100, 400

    def _assert_parity(self, dataset, oracle):
        text = f"SELECT VALUE t.id FROM apaths AS t WHERE t.ts >= {self.LOW} AND t.ts <= {self.HIGH}"
        via_index, result = _rows(dataset, text, "index")
        assert result.stats.access_path == "IndexProbe"
        expected = sorted(key for key, record in oracle.items()
                          if self.LOW <= record["ts"] <= self.HIGH)
        assert via_index == expected
        via_scan, _ = _rows(dataset, text, "scan")
        assert via_scan == expected

    def test_upsert_delete_flush_merge_recovery(self):
        environment = StorageEnvironment.for_device(DeviceKind.NVME_SSD,
                                                    page_size=4096, buffer_cache_pages=512)
        dataset = Dataset.create("apaths", StorageFormat.INFERRED, environment=environment)
        dataset.create_index("by_ts", "ts")
        oracle = {}

        def put(record):
            oracle[record["id"]] = record
            dataset.upsert(record)

        for i in range(60):
            put({"id": i, "ts": i * 10, "payload": f"p{i}"})
        self._assert_parity(dataset, oracle)            # memtable only

        dataset.flush_all()
        self._assert_parity(dataset, oracle)            # one component

        for i in range(0, 60, 4):                       # move values in and out of range
            put({"id": i, "ts": i * 10 + 1000, "payload": "moved"})
        self._assert_parity(dataset, oracle)            # stale index entries + memtable

        for i in range(5, 60, 10):
            del oracle[i]
            dataset.delete(i)
        self._assert_parity(dataset, oracle)            # anti-matter in the memtable

        dataset.flush_all()
        self._assert_parity(dataset, oracle)            # two components, shadowed keys

        partition = dataset.partitions[0]
        assert partition.index.component_count() >= 2
        partition.index.merge(list(partition.index.components))
        self._assert_parity(dataset, oracle)            # merged, anti-matter dropped

        put({"id": 200, "ts": 150, "payload": "post-merge, unflushed"})

        # Crash: forget all in-memory state, keep files + WAL, recover.
        revived = Dataset.create("apaths", StorageFormat.INFERRED, environment=environment)
        revived.create_index("by_ts", "ts")
        for part in revived.partitions:
            part.recover()
        self._assert_parity(revived, oracle)            # recovered components + WAL replay

    def test_index_created_after_data_backfills(self):
        dataset = _build(StorageFormat.OPEN, index=False)
        dataset.flush_all()
        dataset.create_index("by_ts", "ts")             # backfill over existing components
        text = _range_query(1000, 1030)
        via_index, result = _rows(dataset, text, "index")
        via_scan, _ = _rows(dataset, text, "scan")
        assert result.stats.index_name == "by_ts"
        assert via_index == via_scan == list(range(11))


# ---------------------------------------------------------------------------
# EXPLAIN: the rendered plan names the winning access path and flips
# ---------------------------------------------------------------------------

class TestExplain:
    def test_low_selectivity_names_index_probe(self):
        dataset = _build(StorageFormat.INFERRED, device=DeviceKind.SATA_SSD)
        plan = dataset.explain(_range_query(1000, 1003))
        assert "IndexProbe(index=by_ts, field=ts" in plan
        assert "residual filter" in plan
        assert "estimated selectivity" in plan

    def test_high_selectivity_names_full_scan(self):
        dataset = _build(StorageFormat.INFERRED, device=DeviceKind.SATA_SSD)
        plan = dataset.explain(_range_query(1000, 1000 + 3 * RECORD_COUNT))
        assert "FullScan" in plan
        assert "IndexProbe(index=" not in plan

    def test_flips_exactly_once_as_selectivity_grows(self):
        dataset = _build(StorageFormat.INFERRED, device=DeviceKind.SATA_SSD)
        choices = []
        for width in range(0, 3 * RECORD_COUNT + 1, 30):
            plan = dataset.explain(_range_query(1000, 1000 + width))
            choices.append("IndexProbe" if "IndexProbe(index=" in plan else "FullScan")
        assert choices[0] == "IndexProbe"
        assert choices[-1] == "FullScan"
        flips = sum(1 for before, after in zip(choices, choices[1:]) if before != after)
        assert flips == 1  # monotone: once the scan wins, it keeps winning

    def test_forced_paths_render_as_forced(self):
        dataset = _build(StorageFormat.INFERRED, device=DeviceKind.SATA_SSD)
        narrow = _range_query(1000, 1003)
        assert "FullScan(forced)" in dataset.explain(narrow, access_path="scan")
        forced = dataset.explain(_range_query(1000, 4000), access_path="index")
        assert "IndexProbe(index=by_ts" in forced and "forced" in forced

    def test_no_usable_index_reports_why(self):
        dataset = _build(StorageFormat.INFERRED)
        plan = dataset.explain("SELECT VALUE t.id FROM apaths AS t WHERE t.name = 'user3'")
        assert "FullScan(no indexed predicate" in plan
        plan = dataset.explain("SELECT VALUE t.id FROM apaths AS t")
        assert "FullScan(no WHERE clause)" in plan


# ---------------------------------------------------------------------------
# hostile-typed data: incomparable bounds, mixed-type fields
# ---------------------------------------------------------------------------

class TestTypeEdgeCases:
    def test_incomparable_bound_keeps_parity(self):
        # A numeric predicate over a string-valued index must not crash the
        # probe path; both paths agree the predicate is never true.
        dataset = Dataset.create("strs", StorageFormat.OPEN)
        dataset.create_index("by_ts", "ts")
        dataset.insert_all({"id": i, "ts": f"s{i}"} for i in range(50))
        dataset.flush_all()
        numeric = "SELECT VALUE t.id FROM strs AS t WHERE t.ts >= 5"
        assert dataset.query(numeric, access_path="index").rows == []
        assert dataset.query(numeric, access_path="scan").rows == []
        stringy = "SELECT VALUE t.id FROM strs AS t WHERE t.ts >= 's48'"
        via_index = sorted(r["value"] for r in dataset.query(stringy, access_path="index").rows)
        via_scan = sorted(r["value"] for r in dataset.query(stringy, access_path="scan").rows)
        assert via_index == via_scan == [5, 6, 7, 8, 9, 48, 49]  # lexicographic order

    def test_failed_backfill_leaves_no_half_built_index(self):
        # Mixed-type values cannot share one sort order; CREATE INDEX must
        # fail atomically: no registered index, no orphan .ix files.
        dataset = Dataset.create("mixed", StorageFormat.OPEN)
        dataset.insert_all([{"id": 1, "ts": 5}, {"id": 2, "ts": "five"}])
        dataset.flush_all()
        with pytest.raises(TypeError):
            dataset.create_index("by_ts", "ts")
        assert dataset.list_secondary_indexes() == []
        files = dataset.environments[0].file_manager.list_files()
        assert not any(".ix." in name for name in files)
        rows = dataset.query("SELECT VALUE t.id FROM mixed AS t WHERE t.ts = 5").rows
        assert [row["value"] for row in rows] == [1]

    def test_merge_does_not_double_count_statistics(self):
        dataset = Dataset.create("stats", StorageFormat.OPEN)
        dataset.create_index("by_v", "v")
        dataset.insert_all({"id": i, "v": i} for i in range(60))
        dataset.flush_all()
        dataset.insert_all({"id": 100 + i, "v": 100 + i} for i in range(60))
        dataset.flush_all()
        assert dataset.index_statistics("by_v").count == 120
        partition = dataset.partitions[0]
        partition.index.merge(list(partition.index.components))
        statistics = dataset.index_statistics("by_v")
        assert statistics.count == 120
        assert statistics.min_value == 0 and statistics.max_value == 159


# ---------------------------------------------------------------------------
# CREATE INDEX surface + statistics plumbing
# ---------------------------------------------------------------------------

class TestCreateIndexSurface:
    def test_create_index_via_sqlpp_text(self):
        dataset = _build(StorageFormat.OPEN, index=False)
        result = dataset.query("CREATE INDEX by_score ON apaths (nested.score)")
        assert result.rows == []
        assert ("by_score", ("nested", "score")) in dataset.list_secondary_indexes()
        text = "SELECT VALUE t.id FROM apaths AS t WHERE t.nested.score >= 90 AND t.nested.score <= 96"
        via_index, probe = _rows(dataset, text, "index")
        via_scan, _ = _rows(dataset, text, "scan")
        assert probe.stats.index_name == "by_score"
        assert via_index == via_scan

    def test_compile_returns_create_index_statement(self):
        compiled = compile_sqlpp("CREATE INDEX by_ts ON Tweets (timestamp_ms);")
        assert isinstance(compiled, CompiledCreateIndex)
        assert compiled.index_name == "by_ts"
        assert compiled.dataset == "Tweets"
        assert compiled.field_path == ("timestamp_ms",)

    def test_malformed_create_index_raises_positioned_error(self):
        with pytest.raises(SqlppError) as excinfo:
            compile_sqlpp("CREATE INDEX ON Tweets (ts)")
        assert excinfo.value.line == 1

    def test_statistics_feed_the_cost_model(self):
        dataset = _build(StorageFormat.OPEN, device=DeviceKind.SATA_SSD)
        statistics = dataset.index_statistics("by_ts")
        assert isinstance(statistics, FieldStatistics)
        assert statistics.count == RECORD_COUNT
        assert statistics.min_value == 1000
        narrow = compile_sqlpp(_range_query(1000, 1003)).spec
        choice = choose_access_path(narrow, dataset)
        assert choice.uses_index
        assert choice.estimated_selectivity < 0.02
        wide = compile_sqlpp(_range_query(None, None)).spec
        choice = choose_access_path(wide, dataset)
        assert not choice.uses_index
