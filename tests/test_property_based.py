"""Property-based tests (hypothesis) for the core data structures.

Invariants covered:

* both physical record formats round-trip arbitrary JSON-like records;
* vector-based compaction is lossless and never grows a record;
* schema inference is insensitive to record order, monotone under
  observation, and returns to the empty schema after removing everything it
  observed;
* the B+-tree bulk loader + reader agree with a plain dict/sorted-list
  oracle for random key sets;
* the LSM index agrees with a dict oracle under random interleavings of
  inserts, upserts, deletes, and flushes;
* the SQL++ front-end round-trips: parse → unparse → parse is the identity
  on randomly generated ASTs (expressions and whole queries).
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adm import ADMDecoder, ADMEncoder
from repro.sqlpp import ast as sqlast
from repro.sqlpp import parse, parse_expression, unparse, unparse_expr
from repro.sqlpp.lexer import KEYWORDS
from repro.btree import BTree, BulkLoader, LeafEntry
from repro.core import TupleCompactor
from repro.lsm import LSMBTree, NoMergePolicy
from repro.schema import InferredSchema, extract_antischema
from repro.storage import BufferCache, InMemoryFileManager, SimulatedStorageDevice
from repro.types import deep_equals, open_only_primary_key
from repro.vector import VectorEncoder, VectorRecordView, compact_record, expand_record

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_field_names = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=12)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=24),
)


def _values(depth: int = 2):
    if depth == 0:
        return _scalars
    children = _values(depth - 1)
    return st.one_of(
        _scalars,
        st.lists(children, max_size=4),
        st.dictionaries(_field_names, children, max_size=4),
    )


_records = st.dictionaries(_field_names, _values(2), max_size=6)

_slow_settings = settings(max_examples=40, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# format round-trips
# ---------------------------------------------------------------------------

class TestFormatRoundTrips:
    @_slow_settings
    @given(record=_records)
    def test_adm_roundtrip(self, record):
        payload = ADMEncoder(None).encode(record)
        assert deep_equals(ADMDecoder(None).decode(payload), record)

    @_slow_settings
    @given(record=_records)
    def test_vector_roundtrip(self, record):
        payload = VectorEncoder(None).encode(record)
        assert deep_equals(VectorRecordView(payload).materialize(), record)

    @_slow_settings
    @given(record=_records)
    def test_compaction_is_lossless_and_never_grows(self, record):
        datatype = open_only_primary_key("T")
        record = dict(record)
        record.setdefault("id", 1)
        schema = InferredSchema(datatype)
        schema.observe(record)
        payload = VectorEncoder(datatype).encode(record)
        compacted = compact_record(payload, schema.dictionary)
        assert len(compacted) <= len(payload)
        view = VectorRecordView(compacted, datatype, schema.dictionary)
        assert deep_equals(view.materialize(), record)
        assert expand_record(compacted, schema.dictionary) == payload


# ---------------------------------------------------------------------------
# schema inference invariants
# ---------------------------------------------------------------------------

class TestSchemaInvariants:
    @_slow_settings
    @given(records=st.lists(_records, min_size=1, max_size=8))
    def test_order_insensitive_structure(self, records):
        """Observation order may change FieldNameID assignment but not the
        name-resolved structure of the schema."""
        from repro.schema import leaf_paths

        forward = InferredSchema()
        backward = InferredSchema()
        forward.observe_all(records)
        backward.observe_all(list(reversed(records)))
        forward_paths = sorted(leaf_paths(forward.root, forward.dictionary))
        backward_paths = sorted(leaf_paths(backward.root, backward.dictionary))
        assert forward_paths == backward_paths
        assert forward.root.counter == backward.root.counter

    @_slow_settings
    @given(records=st.lists(_records, min_size=1, max_size=8))
    def test_observation_is_monotone(self, records):
        schema = InferredSchema()
        previous = schema.snapshot()
        for record in records:
            schema.observe(record)
            assert schema.is_superset_of(previous)
            previous = schema.snapshot()

    @_slow_settings
    @given(records=st.lists(_records, min_size=1, max_size=8))
    def test_remove_everything_returns_to_empty(self, records):
        schema = InferredSchema()
        schema.observe_all(records)
        for record in records:
            schema.remove(extract_antischema(record))
        assert schema.field_count == 0
        assert schema.root.counter == 0

    @_slow_settings
    @given(records=st.lists(_records, min_size=1, max_size=8))
    def test_serialization_roundtrip(self, records):
        schema = InferredSchema()
        schema.observe_all(records)
        restored = InferredSchema.from_bytes(schema.to_bytes())
        assert restored.structurally_equal(schema, compare_counters=True)


# ---------------------------------------------------------------------------
# SQL++ parse/unparse round trip
# ---------------------------------------------------------------------------

_sql_names = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(string.ascii_lowercase),
    st.text(alphabet=string.ascii_lowercase + string.digits + "_", max_size=8),
).filter(lambda name: name.upper() not in KEYWORDS)

_path_steps = st.lists(
    st.one_of(_sql_names, st.integers(min_value=0, max_value=99), st.just("*")),
    min_size=1, max_size=3).map(tuple)

_sql_numbers = st.one_of(
    st.integers(min_value=0, max_value=10 ** 9),
    st.floats(min_value=0, allow_nan=False, allow_infinity=False, width=64)
    .map(lambda value: 0.0 if value == 0 else value),  # repr(-0.0) would re-parse as NegExpr
)

_sql_leaves = st.one_of(
    st.builds(sqlast.NumberLit, value=_sql_numbers),
    st.builds(sqlast.StringLit, value=st.text(max_size=12)),
    st.builds(sqlast.BoolLit, value=st.booleans()),
    st.builds(sqlast.NullLit),
    st.builds(sqlast.MissingLit),
    st.builds(sqlast.Ident, name=_sql_names),
    st.builds(sqlast.Path, base=st.builds(sqlast.Ident, name=_sql_names),
              steps=_path_steps),
)


def _sql_exprs(children):
    operands = st.lists(children, min_size=2, max_size=3).map(tuple)
    return st.one_of(
        st.builds(sqlast.BinOp,
                  op=st.sampled_from(["=", "!=", "<", "<=", ">", ">=",
                                      "+", "-", "*", "/", "%"]),
                  left=children, right=children),
        st.builds(sqlast.AndExpr, operands=operands),
        st.builds(sqlast.OrExpr, operands=operands),
        st.builds(sqlast.NotExpr, operand=children),
        st.builds(sqlast.NegExpr, operand=children),
        st.builds(sqlast.Call, name=_sql_names,
                  args=st.lists(children, max_size=2).map(tuple)),
        st.builds(sqlast.Quantified, var=_sql_names, collection=children,
                  predicate=children),
        st.builds(sqlast.ExistsExpr, operand=children),
        st.builds(sqlast.IsTest, operand=children,
                  kind=st.sampled_from(["null", "missing", "unknown"]),
                  negated=st.booleans()),
    )


_sql_expr = st.recursive(_sql_leaves, _sql_exprs, max_leaves=12)

_select_items = st.lists(
    st.builds(sqlast.SelectItem, expr=_sql_expr,
              alias=st.one_of(st.none(), _sql_names)),
    min_size=1, max_size=3).map(tuple)

_select_clauses = st.one_of(
    st.builds(sqlast.SelectClause, kind=st.just("star")),
    st.builds(sqlast.SelectClause, kind=st.just("value"), value=_sql_expr),
    st.builds(sqlast.SelectClause, kind=st.just("items"), items=_select_items),
)

_sql_queries = st.builds(
    sqlast.Query,
    select=_select_clauses,
    from_clause=st.builds(sqlast.FromClause, dataset=_sql_names, alias=_sql_names),
    lets=st.lists(st.builds(sqlast.LetClause, name=_sql_names, expr=_sql_expr),
                  max_size=2).map(tuple),
    unnests=st.lists(st.builds(sqlast.UnnestClause, collection=_sql_expr,
                               alias=_sql_names), max_size=2).map(tuple),
    where=st.one_of(st.none(), _sql_expr),
    group_by=st.lists(st.builds(sqlast.GroupKey, expr=_sql_expr,
                                alias=st.one_of(st.none(), _sql_names)),
                      max_size=2).map(tuple),
    order_by=st.lists(st.builds(sqlast.OrderItem, expr=_sql_expr,
                                descending=st.booleans()), max_size=2).map(tuple),
    limit=st.one_of(st.none(),
                    st.builds(sqlast.NumberLit,
                              value=st.integers(min_value=1, max_value=1000))),
)


class TestSqlppRoundTrip:
    @_slow_settings
    @given(expr=_sql_expr)
    def test_expression_round_trip(self, expr):
        assert parse_expression(unparse_expr(expr)) == expr

    @_slow_settings
    @given(query=_sql_queries)
    def test_query_round_trip(self, query):
        text = unparse(query)
        assert parse(text) == query
        # Idempotence: the canonical text is a fixed point of unparsing.
        assert unparse(parse(text)) == text


# ---------------------------------------------------------------------------
# B+-tree vs oracle
# ---------------------------------------------------------------------------

class TestBTreeOracle:
    @_slow_settings
    @given(keys=st.sets(st.integers(min_value=0, max_value=10 ** 6), min_size=1, max_size=300),
           probes=st.lists(st.integers(min_value=0, max_value=10 ** 6), max_size=30),
           bounds=st.tuples(st.integers(min_value=0, max_value=10 ** 6),
                            st.integers(min_value=0, max_value=10 ** 6)))
    def test_lookup_and_range_match_oracle(self, keys, probes, bounds):
        ordered = sorted(keys)
        device = SimulatedStorageDevice()
        cache = BufferCache(InMemoryFileManager(device, 512), 256)
        cache.file_manager.create_file("t")
        info = BulkLoader(cache, "t").build([LeafEntry(key, str(key).encode()) for key in ordered])
        tree = BTree(cache, "t", info)
        for probe in probes:
            found = tree.search(probe)
            assert (found is not None) == (probe in keys)
        low, high = min(bounds), max(bounds)
        expected = [key for key in ordered if low <= key <= high]
        assert [entry.key for entry in tree.range_scan(low, high)] == expected


# ---------------------------------------------------------------------------
# LSM index vs dict oracle
# ---------------------------------------------------------------------------

class _Op:
    INSERT, UPSERT, DELETE, FLUSH = range(4)


_operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=40)),
    min_size=1, max_size=80,
)


class TestLSMOracle:
    @_slow_settings
    @given(operations=_operations)
    def test_random_workload_matches_dict(self, operations):
        datatype = open_only_primary_key("T")
        encoder = VectorEncoder(datatype)
        compactor = TupleCompactor(datatype)
        device = SimulatedStorageDevice()
        cache = BufferCache(InMemoryFileManager(device, 2048), 512)
        index = LSMBTree("oracle", 0, cache, memory_budget=1 << 20,
                         merge_policy=NoMergePolicy(), flush_callback=compactor)
        oracle = {}
        for op, key in operations:
            record = {"id": key, "value": f"v{key}", "op": op}
            if op == _Op.INSERT:
                if key in oracle:
                    continue
                index.insert(key, record, encoder.encode(record))
                oracle[key] = record
            elif op == _Op.UPSERT:
                index.upsert(key, record, encoder.encode(record))
                oracle[key] = record
            elif op == _Op.DELETE:
                if key not in oracle:
                    continue
                index.delete(key)
                del oracle[key]
            else:
                index.flush()
        # final comparison via point lookups and a full scan
        scanned = {result.key for result in index.scan()}
        assert scanned == set(oracle)
        for key, record in oracle.items():
            found = index.search(key)
            assert found is not None
            decoded = compactor.decode_record(found.payload, found.schema) \
                if found.record is None else found.record
            assert decoded == record
