"""Unit tests for the ADM physical format (encoder, decoder, lazy view)."""

import pytest

from repro.adm import ADMDecoder, ADMEncoder, ADMRecordView
from repro.errors import DecodingError, EncodingError, SchemaViolationError
from repro.types import (
    ADate,
    AMultiset,
    APoint,
    Datatype,
    FieldDeclaration,
    MISSING,
    TypeTag,
    deep_equals,
    open_only_primary_key,
)


EMPLOYEE_RECORD = {
    "id": 1,
    "name": "Ann",
    "dependents": AMultiset([
        {"name": "Bob", "age": 6},
        {"name": "Carol", "age": 10},
    ]),
    "employment_date": ADate.from_iso("2018-09-20"),
    "branch_location": APoint(24.0, -56.12),
    "working_shifts": [[8, 16], [9, 17], [10, 18], "on_call"],
}


def _open_datatype():
    return open_only_primary_key("EmployeeType")


def _closed_datatype():
    dependent = Datatype.closed_type("DependentType", [
        FieldDeclaration("name", TypeTag.STRING),
        FieldDeclaration("age", TypeTag.INT64),
    ])
    return Datatype.closed_type("EmployeeClosed", [
        FieldDeclaration("id", TypeTag.INT64),
        FieldDeclaration("name", TypeTag.STRING),
        FieldDeclaration("dependents", TypeTag.MULTISET, optional=True,
                         item_type=TypeTag.OBJECT, item_nested=dependent),
        FieldDeclaration("employment_date", TypeTag.DATE, optional=True),
        FieldDeclaration("branch_location", TypeTag.POINT, optional=True),
        FieldDeclaration("working_shifts", TypeTag.ARRAY, optional=True, item_type=TypeTag.ANY),
    ])


class TestRoundTrip:
    def test_open_roundtrip(self):
        datatype = _open_datatype()
        payload = ADMEncoder(datatype).encode(EMPLOYEE_RECORD)
        decoded = ADMDecoder(datatype).decode(payload)
        assert deep_equals(decoded, EMPLOYEE_RECORD)

    def test_closed_roundtrip(self):
        datatype = _closed_datatype()
        payload = ADMEncoder(datatype).encode(EMPLOYEE_RECORD)
        decoded = ADMDecoder(datatype).decode(payload)
        assert deep_equals(decoded, EMPLOYEE_RECORD)

    def test_no_datatype_roundtrip(self):
        record = {"a": 1, "b": [True, None, "x"], "c": {"d": 2.5}}
        payload = ADMEncoder(None).encode(record)
        decoded = ADMDecoder(None).decode(record and payload)
        assert deep_equals(decoded, record)

    def test_empty_record(self):
        payload = ADMEncoder(None).encode({})
        assert ADMDecoder(None).decode(payload) == {}

    def test_optional_declared_field_absent(self):
        datatype = _closed_datatype()
        record = {"id": 9, "name": "Sam"}
        payload = ADMEncoder(datatype).encode(record)
        decoded = ADMDecoder(datatype).decode(payload)
        assert decoded == record

    def test_nulls_and_missing(self):
        record = {"id": 1, "maybe": None}
        datatype = _open_datatype()
        payload = ADMEncoder(datatype).encode(record)
        assert ADMDecoder(datatype).decode(payload) == {"id": 1, "maybe": None}

    def test_top_level_must_be_object(self):
        with pytest.raises(EncodingError):
            ADMEncoder(None).encode([1, 2, 3])

    def test_validation_enforced(self):
        datatype = _closed_datatype()
        with pytest.raises(SchemaViolationError):
            ADMEncoder(datatype).encode({"id": 1, "name": "Ann", "unexpected": 5})

    def test_validation_can_be_disabled(self):
        datatype = _closed_datatype()
        payload = ADMEncoder(datatype, validate=False).encode(
            {"id": 1, "name": "Ann", "unexpected": 5})
        decoded = ADMDecoder(datatype).decode(payload)
        assert decoded["unexpected"] == 5


class TestSizes:
    def test_open_is_larger_than_closed(self):
        """Open records carry field names + offsets inline -> more bytes."""
        open_payload = ADMEncoder(_open_datatype()).encode(EMPLOYEE_RECORD)
        closed_payload = ADMEncoder(_closed_datatype()).encode(EMPLOYEE_RECORD)
        assert len(open_payload) > len(closed_payload)

    def test_value_encoding_scalar(self):
        encoder = ADMEncoder(None)
        payload = encoder.encode_value(42)
        assert ADMDecoder(None).decode_value(payload) == 42


class TestRecordView:
    def test_declared_field_access(self):
        datatype = _closed_datatype()
        view = ADMRecordView(ADMEncoder(datatype).encode(EMPLOYEE_RECORD), datatype)
        assert view.get_field("name") == "Ann"
        assert view.get_field("id") == 1

    def test_open_field_access(self):
        datatype = _open_datatype()
        view = ADMRecordView(ADMEncoder(datatype).encode(EMPLOYEE_RECORD), datatype)
        assert view.get_field("name") == "Ann"
        assert view.get_field("employment_date") == ADate.from_iso("2018-09-20")

    def test_nested_path_access(self):
        datatype = _open_datatype()
        view = ADMRecordView(ADMEncoder(datatype).encode(EMPLOYEE_RECORD), datatype)
        assert view.get_field("dependents", 0, "name") == "Bob"
        assert view.get_field("dependents", 1, "age") == 10
        assert view.get_field("working_shifts", 3) == "on_call"
        assert view.get_field("working_shifts", 0, 1) == 16

    def test_nested_path_access_closed(self):
        datatype = _closed_datatype()
        view = ADMRecordView(ADMEncoder(datatype).encode(EMPLOYEE_RECORD), datatype)
        assert view.get_field("dependents", 0, "name") == "Bob"
        assert view.get_field("dependents", 1, "age") == 10

    def test_missing_propagation(self):
        datatype = _open_datatype()
        view = ADMRecordView(ADMEncoder(datatype).encode(EMPLOYEE_RECORD), datatype)
        assert view.get_field("nonexistent") is MISSING
        assert view.get_field("name", "nested") is MISSING
        assert view.get_field("dependents", 99) is MISSING
        assert view.get_field("dependents", 0, "unknown") is MISSING

    def test_get_items_for_unnest(self):
        datatype = _open_datatype()
        view = ADMRecordView(ADMEncoder(datatype).encode(EMPLOYEE_RECORD), datatype)
        items = view.get_items("dependents")
        assert len(items) == 2
        assert view.get_items("name") == ["Ann"]
        assert view.get_items("nonexistent") == []

    def test_materialize_matches_decode(self):
        datatype = _open_datatype()
        payload = ADMEncoder(datatype).encode(EMPLOYEE_RECORD)
        assert deep_equals(ADMRecordView(payload, datatype).materialize(), EMPLOYEE_RECORD)

    def test_bad_payload_raises(self):
        with pytest.raises(DecodingError):
            ADMDecoder(None).decode(bytes([255, 0, 0, 0]))
