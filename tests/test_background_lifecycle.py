"""Background LSM lifecycle: async flush/merge, rotation, backpressure, drain.

The contract pinned down here:

* **Row-level parity by construction** — a dataset ingesting under the
  background scheduler ends up with exactly the same rows, counts, and
  query results as a synchronously-maintained oracle fed the same
  operations, across ``max_sealed_memtables`` settings;
* **Measured overlap** — with the device's latency-realism throttle on, a
  multi-partition ``DataFeed`` with per-partition ingest threads and
  background flush/merge finishes in measurably less wall time than the
  synchronous sequential pipeline;
* **Deterministic quiescence** — ``Dataset.close()`` (and the context
  manager) drains in-flight maintenance, is idempotent, and surfaces
  background failures instead of hanging;
* **Durability** — a crash in the middle of a background flush leaves an
  INVALID component that recovery removes, and the WAL (truncated only up
  to each sealed memtable's covered LSN, per partition) replays to the
  same row set.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, DeviceKind, LSMConfig, StorageEnvironment, StorageFormat
from repro.cluster import DataFeed
from repro.config import StorageConfig
from repro.datasets import twitter
from repro.errors import (
    ComponentStateError,
    KeyNotFoundError,
    MaintenanceDecodeError,
    SchedulerError,
)
from repro.lsm import FlushCallback, LSMBTree, LSMIOScheduler, NoMergePolicy
from repro.query import QueryExecutor, field, scan
from repro.storage import BufferCache, InMemoryFileManager, SimulatedStorageDevice
from repro.storage.wal import LogRecordType, WriteAheadLog

PARTITIONS = 4

#: Small memory budget so modest record counts produce many rotations.
SMALL_BUDGET = 16 * 1024


def _lsm(background=False, **overrides):
    defaults = dict(memory_component_budget=SMALL_BUDGET,
                    max_tolerable_component_count=3,
                    background_maintenance=background)
    defaults.update(overrides)
    return LSMConfig(**defaults)


def _rows(dataset):
    return sorted((row["id"], row.get("lang"), row.get("retweet_count"))
                  for row in dataset.scan())


# ---------------------------------------------------------------------------
# scheduler unit behaviour
# ---------------------------------------------------------------------------

class TestScheduler:
    def test_drain_waits_for_submitted_work(self):
        scheduler = LSMIOScheduler(max_flush_workers=2)
        done = []
        gate = threading.Event()

        def task():
            gate.wait(timeout=5)
            done.append(1)

        for _ in range(4):
            scheduler.submit_flush(task)
        assert scheduler.pending == 4
        gate.set()
        scheduler.drain()
        assert done == [1, 1, 1, 1]
        assert scheduler.pending == 0
        scheduler.close()

    def test_close_is_idempotent_and_rejects_new_work(self):
        scheduler = LSMIOScheduler()
        scheduler.close()
        scheduler.close()
        with pytest.raises(SchedulerError):
            scheduler.submit_flush(lambda: None)

    def test_background_failure_surfaces_on_drain(self):
        scheduler = LSMIOScheduler()

        def boom():
            raise ValueError("flush exploded")

        scheduler.submit_flush(boom)
        with pytest.raises(SchedulerError, match="flush exploded"):
            scheduler.drain()
        with pytest.raises(SchedulerError):
            scheduler.close()


# ---------------------------------------------------------------------------
# typed maintenance-decode error (satellite fix)
# ---------------------------------------------------------------------------

class _OpaqueCallback(FlushCallback):
    """Requires anti-schemas but cannot decode stored payloads."""

    needs_antischema = True


class TestMaintenanceDecodeError:
    def _index(self):
        device = SimulatedStorageDevice()
        cache = BufferCache(InMemoryFileManager(device, 2048), 256)
        return LSMBTree(name="opaque", partition=0, buffer_cache=cache,
                        memory_budget=1 << 20, merge_policy=NoMergePolicy(),
                        flush_callback=_OpaqueCallback())

    def test_delete_of_flushed_record_raises_typed_error(self):
        index = self._index()
        index.insert(1, {"id": 1}, b"payload-1")
        index.flush()
        with pytest.raises(MaintenanceDecodeError):
            index.delete(1)

    def test_typed_error_is_a_component_state_error(self):
        # Callers catching the old, broader type keep working.
        assert issubclass(MaintenanceDecodeError, ComponentStateError)


# ---------------------------------------------------------------------------
# WAL handoff
# ---------------------------------------------------------------------------

class TestWalPartitionTruncation:
    def test_truncate_partition_spares_other_partitions(self):
        wal = WriteAheadLog()
        a1 = wal.append(LogRecordType.INSERT, "ds", 0, key=1, payload=b"a")
        b1 = wal.append(LogRecordType.INSERT, "ds", 1, key=2, payload=b"b")
        a2 = wal.append(LogRecordType.INSERT, "ds", 0, key=3, payload=b"c")
        wal.truncate_partition("ds", 0, up_to_lsn=a2.lsn)
        surviving = list(wal.replay())
        assert [record.lsn for record in surviving] == [b1.lsn]
        # The global truncate (kept for single-partition callers) still works.
        wal.truncate(b1.lsn)
        assert list(wal.replay()) == []
        del a1

    def test_truncate_partition_keeps_newer_records_of_same_partition(self):
        wal = WriteAheadLog()
        old = wal.append(LogRecordType.INSERT, "ds", 0, key=1, payload=b"a")
        new = wal.append(LogRecordType.INSERT, "ds", 0, key=2, payload=b"b")
        wal.truncate_partition("ds", 0, up_to_lsn=old.lsn)
        assert [record.key for record in wal.replay()] == [new.key]


# ---------------------------------------------------------------------------
# parity with the synchronous oracle
# ---------------------------------------------------------------------------

def _apply_ops(dataset, records):
    """Mixed inserts/upserts/deletes; deterministic, exercises anti-schemas."""
    for position, record in enumerate(records):
        dataset.insert(record)
        if position % 5 == 2:
            dataset.upsert(dict(record, lang="zz", extra_field=position))
        if position % 11 == 7:
            dataset.delete(record["id"])


class TestBackgroundParity:
    @pytest.mark.parametrize("max_sealed", [1, 2, 4])
    @pytest.mark.parametrize("storage_format",
                             [StorageFormat.OPEN, StorageFormat.INFERRED])
    def test_row_parity_across_sealed_memtable_settings(self, storage_format, max_sealed):
        records = list(twitter.generate(220))
        background = Dataset.create(
            f"bg_{storage_format.value}_{max_sealed}", storage_format,
            partitions=PARTITIONS,
            lsm=_lsm(background=True, max_sealed_memtables=max_sealed))
        oracle = Dataset.create(
            f"sync_{storage_format.value}_{max_sealed}", storage_format,
            partitions=PARTITIONS, lsm=_lsm(background=False))
        assert background.background_maintenance
        assert not oracle.background_maintenance

        _apply_ops(background, records)
        _apply_ops(oracle, records)
        background.flush_all()
        oracle.flush_all()

        assert _rows(background) == _rows(oracle)
        assert background.count() == oracle.count()
        bg_stats, oracle_stats = background.ingest_stats(), oracle.ingest_stats()
        for counter in ("inserts", "deletes", "upserts"):
            assert bg_stats[counter] == oracle_stats[counter]

        spec = (scan("t").group_by(("lang", field("t", "lang")))
                .aggregate("n", "count").order_by("lang").build())
        executor = QueryExecutor(parallelism=2)
        assert (executor.execute(background, spec).rows
                == executor.execute(oracle, spec).rows)
        background.close()

    def test_queries_see_sealed_memtables_before_flush_completes(self):
        """Reads reconcile mutable + sealed + disk: nothing ingested may go
        missing while its sealed memtable still waits for a flush worker."""
        dataset = Dataset.create("bg_sealed_reads", StorageFormat.OPEN,
                                 partitions=1, lsm=_lsm(background=True))
        index = dataset.partitions[0].index
        for i in range(400):
            dataset.insert({"id": i, "pad": "x" * 120})
            assert dataset.get(i) is not None
        # Whether or not flushes have completed yet, every row is visible.
        assert dataset.count() == 400
        dataset.close()
        assert index.sealed_memtables == []
        assert dataset.count() == 400

    def test_env_toggle_enables_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_LSM_SCHEDULER", "1")
        dataset = Dataset.create("bg_env", StorageFormat.OPEN)
        assert dataset.background_maintenance
        dataset.close()
        monkeypatch.setenv("REPRO_LSM_SCHEDULER", "0")
        assert not Dataset.create("bg_env_off", StorageFormat.OPEN).background_maintenance
        # An explicit config always wins over the environment.
        monkeypatch.setenv("REPRO_LSM_SCHEDULER", "1")
        explicit = Dataset.create("bg_env_explicit", StorageFormat.OPEN,
                                  lsm=LSMConfig(background_maintenance=False))
        assert not explicit.background_maintenance

    def test_close_is_idempotent_and_context_manager_closes(self):
        with Dataset.create("bg_ctx", StorageFormat.OPEN, partitions=2,
                            lsm=_lsm(background=True)) as dataset:
            dataset.insert_all({"id": i, "pad": "y" * 100} for i in range(300))
        assert dataset.scheduler.closed
        dataset.close()  # second close is a no-op
        # Post-close writes fall back to synchronous maintenance.
        dataset.insert({"id": 10_000, "pad": "z"})
        dataset.flush_all()
        assert dataset.get(10_000) is not None

    def test_upsert_antischema_lookups_survive_concurrent_merges(self):
        """Regression: the writer's maintenance lookups (anti-schema fetch,
        primary-key existence check) take the read guard, so a background
        merge retiring components mid-lookup defers its file deletions
        instead of yanking pages out from under the writer."""
        environment = StorageEnvironment(StorageConfig(
            page_size=1024, buffer_cache_pages=64))
        dataset = Dataset.create(
            "bg_upsert_merge", StorageFormat.INFERRED, environment=environment,
            partitions=1,
            lsm=_lsm(background=True, memory_component_budget=2048,
                     max_tolerable_component_count=2, max_sealed_memtables=2))
        for i in range(900):
            dataset.upsert({"id": i % 40, "v": i, "pad": "x" * 60})
        dataset.flush_all()
        assert dataset.count() == 40
        stats = dataset.ingest_stats()
        assert stats["merges"] > 0, "the scenario must actually exercise merges"
        assert stats["maintenance_point_lookups"] > 0
        dataset.close()

    def test_backpressure_stalls_writer_and_is_reported(self):
        """With one sealed memtable allowed and a throttled device, the
        writer must block on rotation and the stall time must be recorded."""
        environment = StorageEnvironment(StorageConfig(
            page_size=1024, device_kind=DeviceKind.SATA_SSD, io_throttle=40.0))
        dataset = Dataset.create(
            "bg_stall", StorageFormat.OPEN, environment=environment,
            partitions=1,
            lsm=_lsm(background=True, max_sealed_memtables=1,
                     memory_component_budget=8 * 1024))
        dataset.insert_all({"id": i, "pad": "s" * 200} for i in range(160))
        dataset.close()
        assert dataset.ingest_stats()["ingest_stall_seconds"] > 0.0


# ---------------------------------------------------------------------------
# measured overlap (the acceptance criterion)
# ---------------------------------------------------------------------------

class TestBackgroundOverlap:
    THROTTLE = 40.0
    RECORDS = 240

    def _environment(self):
        return StorageEnvironment(StorageConfig(
            page_size=1024, buffer_cache_pages=4096,
            device_kind=DeviceKind.SATA_SSD, io_throttle=self.THROTTLE))

    def _records(self):
        return [{"id": i, "lang": f"l{i % 5}", "pad": "x" * 180}
                for i in range(self.RECORDS)]

    def _feed(self, name, background, per_partition):
        # Budget small enough that every partition rotates/flushes several
        # times mid-run — the overlap being measured is ingest vs flush, not
        # just ingest vs ingest.
        dataset = Dataset.create(
            name, StorageFormat.OPEN, environment=self._environment(),
            partitions=PARTITIONS,
            lsm=_lsm(background=background, max_sealed_memtables=3,
                     memory_component_budget=6 * 1024))
        feed = DataFeed(dataset, per_partition_ingest=per_partition)
        report = feed.run(self._records())
        feed.close()
        return dataset, report, feed

    def test_background_feed_beats_synchronous_wall_time_with_parity(self):
        """Acceptance: with ``io_throttle`` on, the multi-partition feed with
        background flush/merge and per-partition ingest threads finishes
        measurably faster than the synchronous sequential pipeline, with
        identical post-ingest state.  The 0.8 factor is generous slack — the
        expected ratio with 4 ingest threads plus flush workers is ~0.3.
        """
        sync_dataset, sync_report, sync_feed = self._feed(
            "ov_sync", background=False, per_partition=False)
        bg_dataset, bg_report, bg_feed = self._feed(
            "ov_bg", background=True, per_partition=True)

        assert bg_report.wall_seconds < sync_report.wall_seconds * 0.8
        assert bg_report.ingest_threads == PARTITIONS
        assert sync_report.ingest_threads == 1

        # Row-level parity and identical ingest accounting.
        assert _rows(bg_dataset) == _rows(sync_dataset)
        assert bg_dataset.count() == sync_dataset.count() == self.RECORDS
        assert bg_report.records_ingested == sync_report.records_ingested
        assert (bg_dataset.ingest_stats()["inserts"]
                == sync_dataset.ingest_stats()["inserts"])
        # Background maintenance traffic was tagged by the worker threads.
        assert bg_feed.maintenance_bytes_written() > 0
        assert sync_feed.maintenance_bytes_written() == 0
        bg_dataset.close()


# ---------------------------------------------------------------------------
# crash mid-background-flush + recovery
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_wal_replays_unflushed_sealed_memtables(self):
        """A background flush that dies before the footer leaves an INVALID
        component and an untruncated WAL; recovery removes the former and
        replays the latter to the exact pre-crash row set."""
        environment = StorageEnvironment()
        dataset = Dataset.create(
            "crash_bg", StorageFormat.INFERRED, environment=environment,
            partitions=1, lsm=_lsm(background=True, max_sealed_memtables=4))
        partition = dataset.partitions[0]
        index = partition.index

        # Arm the crash: every background flush dies just before the footer
        # page (the component's validity bit) is written.
        original = index._flush_memtable

        def crashing_flush(memtable, up_to_lsn=None, fail_before_footer=False):
            return original(memtable, up_to_lsn=up_to_lsn, fail_before_footer=True)

        index._flush_memtable = crashing_flush

        # Few enough rotations that the writer never trips backpressure
        # (which would — correctly — surface the armed failure mid-insert).
        records = list(twitter.generate(50))
        for record in records:
            dataset.insert(record)

        # The failure is surfaced deterministically, not swallowed.
        with pytest.raises(SchedulerError):
            dataset.drain()
        with pytest.raises(SchedulerError):
            dataset.close()

        # "Crash": abandon the dataset object; files + WAL survive in the
        # environment.  A footer-less (INVALID) component file was left
        # behind by the dying flush; recovery must remove it.
        invalid_files = [name for name in environment.file_manager.list_files()
                         if name.startswith("crash_bg_p0_c")]
        assert invalid_files, "the dying flush should have left a partial component"

        revived = Dataset.create("crash_bg", StorageFormat.INFERRED,
                                 environment=environment, partitions=1,
                                 lsm=_lsm(background=False))
        revived.partitions[0].recover()

        assert sorted(row["id"] for row in revived.scan()) == sorted(
            record["id"] for record in records)
        assert revived.count() == len(records)

    def test_clean_background_ingest_recovers_after_losing_memtables(self):
        """Without any crash trickery: drop the in-memory state mid-ingest
        (some components flushed in the background, some operations only in
        the WAL) and recover to the full row set."""
        environment = StorageEnvironment()
        dataset = Dataset.create(
            "crash_clean", StorageFormat.INFERRED, environment=environment,
            partitions=1, lsm=_lsm(background=True))
        records = list(twitter.generate(150))
        for record in records:
            dataset.insert(record)
        dataset.drain()   # quiesce maintenance; mutable memtable NOT flushed
        dataset.scheduler.close()

        revived = Dataset.create("crash_clean", StorageFormat.INFERRED,
                                 environment=environment, partitions=1,
                                 lsm=_lsm(background=False))
        report = revived.partitions[0].recover()
        assert sorted(row["id"] for row in revived.scan()) == sorted(
            record["id"] for record in records)
        del report


# ---------------------------------------------------------------------------
# hypothesis stress: concurrent ingest + queries vs the synchronous oracle
# ---------------------------------------------------------------------------

class TestConcurrentIngestStress:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["insert", "upsert", "delete"]),
                  st.integers(min_value=0, max_value=60),
                  st.integers(min_value=0, max_value=9)),
        min_size=20, max_size=120))
    def test_interleaved_ops_and_queries_match_oracle(self, ops):
        """Concurrent queries during backgrounded ingest never see torn
        state, and the drained end state matches a synchronous oracle fed
        the identical operation sequence (same exceptions included)."""
        background = Dataset.create(
            "stress_bg", StorageFormat.OPEN, partitions=2,
            lsm=_lsm(background=True, memory_component_budget=2048,
                     max_sealed_memtables=2))
        oracle = Dataset.create("stress_sync", StorageFormat.OPEN, partitions=2,
                                lsm=_lsm(background=False,
                                         memory_component_budget=2048))

        spec = scan("t").select(("id", field("t", "id"))).build()
        executor = QueryExecutor(parallelism=2)
        failures = []
        done = threading.Event()

        def query_loop():
            try:
                while not done.is_set():
                    ids = [row["id"] for row in executor.execute(background, spec).rows]
                    assert len(ids) == len(set(ids)), "duplicate key in concurrent scan"
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(repr(exc))

        def apply(target):
            outcomes = []
            for op, key, value in ops:
                raised = False
                try:
                    if op == "insert":
                        target.upsert({"id": key, "value": value, "pad": "p" * 40})
                    elif op == "upsert":
                        target.upsert({"id": key, "value": value, "kind": "u"})
                    else:
                        target.delete(key)
                except KeyNotFoundError:
                    raised = True
                outcomes.append(raised)
            return outcomes

        querier = threading.Thread(target=query_loop)
        querier.start()
        try:
            background_outcomes = apply(background)
        finally:
            done.set()
            querier.join()
        assert apply(oracle) == background_outcomes, "oracle diverged on exceptions"

        background.flush_all()
        oracle.flush_all()
        assert not failures, failures
        assert (sorted((row["id"], row.get("value"), row.get("kind"))
                       for row in background.scan())
                == sorted((row["id"], row.get("value"), row.get("kind"))
                          for row in oracle.scan()))
        assert background.count() == oracle.count()
        background.close()
