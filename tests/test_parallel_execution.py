"""Parallel-vs-sequential query execution: parity, measured speedup, stress.

The executor fans partitions out over a real worker pool (PR 3).  These
tests pin down the contract that makes that safe to rely on:

* **Parity** — the same rows come back for every ``parallelism`` setting
  (identical lists, in fact: partition outputs are merged in partition-id
  order, so even unordered results are deterministic by construction);
* **Measured speedup** — with the device's latency-realism throttle turned
  on, a multi-partition FullScan at ``parallelism=4`` finishes in
  measurably less wall time than the same query at ``parallelism=1``;
* **Accounting** — per-partition byte counts (thread-local device scopes)
  sum exactly to the query totals, with no cross-thread bleed;
* **Stress** — hypothesis-driven concurrent queries while another thread
  inserts and flushes on a multi-partition dataset.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, DeviceKind, StorageEnvironment, StorageFormat
from repro.config import LSMConfig, StorageConfig
from repro.datasets import twitter
from repro.query import Comparison, QueryExecutor, field, lit, scan

PARTITIONS = 4
RECORD_COUNT = 240

FORMATS = [StorageFormat.OPEN, StorageFormat.INFERRED, StorageFormat.SL_VB]


def _build(storage_format: StorageFormat, partitions: int = PARTITIONS,
           count: int = RECORD_COUNT, name: str = "par") -> Dataset:
    dataset = Dataset.create(f"{name}_{storage_format.value}_{partitions}",
                             storage_format, partitions=partitions)
    dataset.insert_all(twitter.generate(count))
    dataset.flush_all()
    return dataset


def _specs():
    """Query shapes covering every coordinator branch."""
    return {
        "project": scan("t").select(("id", field("t", "id")),
                                    ("lang", field("t", "lang"))).build(),
        "filtered": (scan("t")
                     .where(Comparison(">=", field("t", "retweet_count"), lit(500)))
                     .select(("id", field("t", "id")),
                             ("rt", field("t", "retweet_count"))).build()),
        "group_by": (scan("t")
                     .group_by(("lang", field("t", "lang")))
                     .aggregate("n", "count")
                     .aggregate("max_rt", "max", field("t", "retweet_count"))
                     .order_by("lang").build()),
        "global_count": scan("t").count_star().build(),
        "order_by": (scan("t")
                     .select(("id", field("t", "id")),
                             ("favs", field("t", "favorite_count")))
                     .order_by(field("t", "favorite_count"), descending=True)
                     .limit(25).build()),
        "limit_no_order": (scan("t")
                           .select(("id", field("t", "id")))
                           .limit(17).build()),
    }


def _multiset(rows):
    return sorted(repr(row) for row in rows)


class TestParallelSequentialParity:
    @pytest.mark.parametrize("storage_format", FORMATS, ids=lambda f: f.value)
    def test_rows_identical_across_parallelism(self, storage_format):
        dataset = _build(storage_format)
        for name, spec in _specs().items():
            results = {degree: QueryExecutor(parallelism=degree).execute(dataset, spec)
                       for degree in (1, 2, PARTITIONS)}
            baseline = results[1]
            for degree in (2, PARTITIONS):
                rows = results[degree].rows
                assert _multiset(rows) == _multiset(baseline.rows), \
                    f"{storage_format.value}/{name}: multiset mismatch at parallelism={degree}"
                # Partition outputs merge in partition-id order, so even
                # unordered results are identical *lists*, not just multisets.
                assert rows == baseline.rows, \
                    f"{storage_format.value}/{name}: order drift at parallelism={degree}"
                assert results[degree].stats.parallelism == degree

    def test_index_probe_parity(self):
        dataset = _build(StorageFormat.OPEN, name="par_ix")
        dataset.create_index("rt_ix", "retweet_count")
        spec = (scan("t")
                .where(Comparison("<", field("t", "retweet_count"), lit(120)))
                .select(("id", field("t", "id"))).build())
        probe_seq = QueryExecutor(access_path="index", parallelism=1).execute(dataset, spec)
        probe_par = QueryExecutor(access_path="index", parallelism=PARTITIONS).execute(dataset, spec)
        scan_par = QueryExecutor(access_path="scan", parallelism=PARTITIONS).execute(dataset, spec)
        assert probe_seq.stats.access_path == "IndexProbe"
        assert probe_par.rows == probe_seq.rows
        assert _multiset(scan_par.rows) == _multiset(probe_par.rows)

    def test_mixed_direction_order_by(self):
        """Regression: each ORDER BY key honours its own ASC/DESC direction
        (the coordinator used to apply the first key's direction to all)."""
        dataset = _build(StorageFormat.OPEN, name="par_mixed")
        spec = (scan("t")
                .select(("lang", field("t", "lang")),
                        ("rt", field("t", "retweet_count")),
                        ("id", field("t", "id")))
                .order_by(field("t", "lang"))
                .order_by(field("t", "retweet_count"), descending=True)
                .build())
        for degree in (1, PARTITIONS):
            rows = QueryExecutor(parallelism=degree).execute(dataset, spec).rows
            expected = sorted(sorted(rows, key=lambda r: -r["rt"]), key=lambda r: r["lang"])
            assert [(r["lang"], r["rt"]) for r in rows] == \
                [(r["lang"], r["rt"]) for r in expected], f"parallelism={degree}"

    def test_sqlpp_query_accepts_parallelism_knob(self):
        dataset = _build(StorageFormat.INFERRED, name="par_sqlpp")
        text = "SELECT VALUE t.id FROM tweets AS t WHERE t.retweet_count >= 800"
        sequential = dataset.query(text, parallelism=1)
        fanned_out = dataset.query(text, parallelism=2)
        assert fanned_out.rows == sequential.rows
        assert fanned_out.stats.parallelism == 2

    def test_limit_cancellation_skips_unneeded_partitions(self):
        dataset = _build(StorageFormat.OPEN, name="par_limit", count=400)
        spec = scan("t").select(("id", field("t", "id"))).limit(3).build()
        sequential = QueryExecutor(parallelism=1).execute(dataset, spec)
        parallel = QueryExecutor(parallelism=PARTITIONS).execute(dataset, spec)
        assert parallel.rows == sequential.rows
        assert len(parallel.rows) == 3
        # The sequential run must cancel every partition after the first one
        # satisfies the limit (the old cross-partition `break`, tokenized).
        assert any(partition.cancelled for partition in sequential.stats.per_partition)
        # No partition ever collects more rows than the limit needs.
        assert sequential.stats.records_scanned <= 3 * PARTITIONS + 32 * PARTITIONS


class TestMeasuredParallelism:
    def _throttled_dataset(self):
        environment = StorageEnvironment(StorageConfig(
            page_size=1024, buffer_cache_pages=4096,
            device_kind=DeviceKind.SATA_SSD, io_throttle=60.0))
        dataset = Dataset.create("par_speedup", StorageFormat.OPEN,
                                 environment=environment, partitions=PARTITIONS)
        dataset.insert_all({"id": i, "value": i % 10, "pad": "x" * 220}
                           for i in range(360))
        dataset.flush_all()
        return dataset

    def test_parallel_fullscan_beats_sequential_wall_time(self):
        """Acceptance: multi-partition FullScan at parallelism=4 returns rows
        identical to parallelism=1 in measurably less wall time.

        The environment's ``io_throttle`` turns simulated device seconds
        into real (GIL-releasing) sleeps, so the sequential run pays each
        partition's cold-read latency back-to-back while the parallel run
        overlaps them — like real disks would behave.  The 0.8 factor is
        generous slack: the expected ratio with 4 workers is ~0.3.
        """
        dataset = self._throttled_dataset()
        spec = (scan("t")
                .where(Comparison("<", field("t", "value"), lit(8)))
                .select(("id", field("t", "id")), ("value", field("t", "value")))
                .build())
        sequential = QueryExecutor(cold_cache=True, parallelism=1).execute(dataset, spec)
        parallel = QueryExecutor(cold_cache=True, parallelism=PARTITIONS).execute(dataset, spec)

        assert parallel.rows == sequential.rows
        assert parallel.stats.access_path == "FullScan"
        assert sequential.stats.parallelism == 1
        assert parallel.stats.parallelism == PARTITIONS
        assert parallel.stats.wall_seconds < sequential.stats.wall_seconds * 0.8
        assert parallel.stats.measured_speedup > 1.2

    def test_per_partition_accounting_sums_to_totals(self):
        dataset = self._throttled_dataset()
        spec = scan("t").select(("id", field("t", "id"))).build()
        result = QueryExecutor(cold_cache=True, parallelism=PARTITIONS).execute(dataset, spec)
        stats = result.stats
        assert len(stats.per_partition) == PARTITIONS
        assert all(partition.bytes_read > 0 for partition in stats.per_partition)
        assert all(partition.records_scanned > 0 for partition in stats.per_partition)
        assert stats.bytes_read == sum(p.bytes_read for p in stats.per_partition)
        assert stats.records_scanned == sum(p.records_scanned for p in stats.per_partition)
        assert stats.simulated_io_seconds == pytest.approx(
            sum(p.simulated_io_seconds for p in stats.per_partition))
        # Byte totals match a cold sequential run of the same query exactly.
        cold = QueryExecutor(cold_cache=True, parallelism=1).execute(dataset, spec)
        assert cold.stats.bytes_read == stats.bytes_read

    def test_nested_accounting_scopes_pop_by_identity(self):
        """Regression: closing an all-zero inner scope must not pop the
        (value-equal) outer scope off the thread-local stack."""
        from repro.storage.device import SimulatedStorageDevice

        device = SimulatedStorageDevice()
        with device.accounting_scope() as outer:
            with device.accounting_scope() as inner:
                pass  # closes while value-equal to the outer scope
            device.record_read(100)
        assert outer.bytes_read == 100
        assert inner.bytes_read == 0

    def test_coordinator_time_is_measured_not_inferred(self):
        dataset = _build(StorageFormat.OPEN, name="par_coord")
        spec = (scan("t").group_by(("lang", field("t", "lang")))
                .aggregate("n", "count").order_by("lang").build())
        stats = QueryExecutor(parallelism=PARTITIONS).execute(dataset, spec).stats
        assert stats.coordinator_seconds >= 0.0
        assert stats.parallel_wall_seconds == pytest.approx(
            max(stats.per_partition_seconds) + stats.coordinator_seconds)
        assert stats.sequential_equivalent_seconds == pytest.approx(
            sum(stats.per_partition_seconds) + stats.coordinator_seconds)


class TestConcurrentQueriesWithFlushes:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    @given(batches=st.lists(st.integers(min_value=1, max_value=12),
                            min_size=1, max_size=5),
           flush_every=st.integers(min_value=1, max_value=4))
    def test_scans_stay_consistent_under_concurrent_ingest(self, batches, flush_every):
        """Queries racing inserts + flushes + merges never see torn state.

        Every concurrent scan must return each key at most once, only keys
        that were ever inserted, and at least the preloaded keys; after the
        ingest thread joins, a final query sees exactly everything.  The
        default (prefix) merge policy stays on and the component-count
        trigger is lowered so flushes cascade into merges mid-query — the
        index defers deleting merged-away component files until in-flight
        scan snapshots finish (LSMBTree.read_guard).
        """
        base_count = 48
        dataset = Dataset.create("stress", StorageFormat.OPEN, partitions=PARTITIONS,
                                 lsm=LSMConfig(max_tolerable_component_count=3))
        dataset.insert_all({"id": i, "value": i % 5} for i in range(base_count))
        dataset.flush_all()

        extra_ids = list(range(base_count, base_count + sum(batches)))
        universe = set(range(base_count + sum(batches)))
        spec = scan("t").select(("id", field("t", "id"))).build()
        executor = QueryExecutor(parallelism=PARTITIONS)
        failures = []
        done = threading.Event()

        def ingest():
            try:
                next_id = iter(extra_ids)
                for batch_index, batch in enumerate(batches):
                    for _ in range(batch):
                        dataset.insert({"id": next(next_id), "value": 1})
                    if batch_index % flush_every == 0:
                        dataset.flush_all()
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(f"ingest: {exc!r}")
            finally:
                done.set()

        def query_loop():
            try:
                while not done.is_set():
                    ids = [row["id"] for row in executor.execute(dataset, spec).rows]
                    assert len(ids) == len(set(ids)), "duplicate keys in concurrent scan"
                    assert set(ids) <= universe, "phantom keys in concurrent scan"
                    assert len(ids) >= base_count, "concurrent scan lost preloaded keys"
            except Exception as exc:
                failures.append(f"query: {exc!r}")

        def lookup_loop():
            # Point lookups take the read guard too: preloaded keys must stay
            # retrievable while merges retire components.
            try:
                key = 0
                while not done.is_set():
                    record = dataset.get(key % base_count)
                    assert record is not None, "concurrent point lookup lost a preloaded key"
                    key += 1
            except Exception as exc:
                failures.append(f"lookup: {exc!r}")

        ingester = threading.Thread(target=ingest)
        queriers = [threading.Thread(target=query_loop) for _ in range(2)]
        queriers.append(threading.Thread(target=lookup_loop))
        ingester.start()
        for thread in queriers:
            thread.start()
        ingester.join(timeout=30)
        assert not ingester.is_alive(), "ingest thread did not finish within 30s"
        for thread in queriers:
            thread.join(timeout=30)
            assert not thread.is_alive(), "query thread did not finish within 30s"
        assert not failures, failures

        final_ids = {row["id"] for row in executor.execute(dataset, spec).rows}
        assert final_ids == universe
