"""Unit tests for the storage substrate: devices, files, cache, compression, WAL."""

import pytest

from repro.config import DeviceKind
from repro.errors import BufferCacheFullError, PageNotFoundError, StorageError, WALError
from repro.storage import (
    BufferCache,
    FileManager,
    InMemoryFileManager,
    LookAsideFile,
    LogRecordType,
    NoneCodec,
    SimulatedStorageDevice,
    WriteAheadLog,
    ZlibCodec,
    compress_page,
    get_codec,
)

PAGE_SIZE = 1024


def _make_cache(codec=None, capacity=8, device_kind=DeviceKind.NVME_SSD):
    device = SimulatedStorageDevice(device_kind)
    manager = InMemoryFileManager(device, PAGE_SIZE, codec)
    return device, manager, BufferCache(manager, capacity)


def _page(fill: int) -> bytes:
    return bytes([fill % 256]) * PAGE_SIZE


class TestSimulatedDevice:
    def test_bandwidth_profiles_differ(self):
        sata = SimulatedStorageDevice(DeviceKind.SATA_SSD)
        nvme = SimulatedStorageDevice(DeviceKind.NVME_SSD)
        sata.record_read(100 * 1024 * 1024)
        nvme.record_read(100 * 1024 * 1024)
        assert sata.simulated_read_seconds > nvme.simulated_read_seconds

    def test_per_class_accounting(self):
        device = SimulatedStorageDevice()
        device.record_write(100, io_class="log")
        device.record_write(50, io_class="data")
        assert device.per_class["log"].bytes_written == 100
        assert device.per_class["data"].bytes_written == 50
        assert device.stats.bytes_written == 150

    def test_snapshot_diff(self):
        device = SimulatedStorageDevice()
        device.record_read(10)
        before = device.snapshot()
        device.record_read(30)
        delta = device.stats.diff(before)
        assert delta.bytes_read == 30
        assert delta.read_ops == 1

    def test_simulated_seconds_monotonic_in_bytes(self):
        device = SimulatedStorageDevice(DeviceKind.SATA_SSD)
        device.record_write(10 * 1024 * 1024)
        small = device.simulated_seconds()
        device.record_write(100 * 1024 * 1024)
        assert device.simulated_seconds() > small


class TestCompression:
    def test_zlib_roundtrip(self):
        codec = ZlibCodec(level=1)
        original = b"abc" * 500
        compressed = codec.compress(original)
        assert len(compressed) < len(original)
        assert codec.decompress(compressed, len(original)) == original

    def test_compress_page_keeps_incompressible_data(self):
        import os

        codec = ZlibCodec()
        payload = os.urandom(PAGE_SIZE)
        stored, was_compressed = compress_page(codec, payload)
        assert not was_compressed
        assert stored == payload

    def test_get_codec_registry(self):
        assert isinstance(get_codec(None), NoneCodec)
        assert isinstance(get_codec("zlib"), ZlibCodec)
        assert isinstance(get_codec("snappy"), ZlibCodec)  # offline stand-in
        with pytest.raises(StorageError):
            get_codec("lz77-madeup")

    def test_bad_zlib_level_rejected(self):
        with pytest.raises(StorageError):
            ZlibCodec(level=42)


class TestLookAsideFile:
    def test_sequential_entries_and_lookup(self):
        laf = LookAsideFile()
        laf.add_entry(0, 0, 100)
        laf.add_entry(1, 100, 80)
        assert laf.entry(1) == (100, 80)
        assert laf.end_offset() == 180
        assert len(laf) == 2

    def test_out_of_order_append_rejected(self):
        laf = LookAsideFile()
        with pytest.raises(StorageError):
            laf.add_entry(3, 0, 10)

    def test_missing_entry_rejected(self):
        with pytest.raises(StorageError):
            LookAsideFile().entry(0)

    def test_entry_size_matches_paper(self):
        """The paper quotes 12-byte LAF entries (so 128KB holds 10,922)."""
        from repro.storage import LAF_ENTRY_SIZE

        assert LAF_ENTRY_SIZE == 12
        assert (128 * 1024) // LAF_ENTRY_SIZE == 10922

    def test_serialization_roundtrip(self):
        laf = LookAsideFile()
        for page_no in range(5):
            laf.add_entry(page_no, page_no * 50, 50)
        restored = LookAsideFile.from_bytes(laf.to_bytes())
        assert [restored.entry(i) for i in range(5)] == [laf.entry(i) for i in range(5)]


class TestFileManager:
    def test_write_read_roundtrip(self):
        _, manager, _ = _make_cache()
        manager.create_file("component_1")
        manager.write_page("component_1", 0, _page(1))
        manager.write_page("component_1", 1, _page(2))
        assert manager.read_page("component_1", 0) == _page(1)
        assert manager.read_page("component_1", 1) == _page(2)
        assert manager.num_pages("component_1") == 2

    def test_wrong_page_size_rejected(self):
        _, manager, _ = _make_cache()
        manager.create_file("f")
        with pytest.raises(StorageError):
            manager.write_page("f", 0, b"short")

    def test_nonsequential_write_rejected(self):
        _, manager, _ = _make_cache()
        manager.create_file("f")
        with pytest.raises(StorageError):
            manager.write_page("f", 3, _page(0))

    def test_missing_page_raises(self):
        _, manager, _ = _make_cache()
        manager.create_file("f")
        with pytest.raises(PageNotFoundError):
            manager.read_page("f", 0)

    def test_duplicate_create_rejected(self):
        _, manager, _ = _make_cache()
        manager.create_file("f")
        with pytest.raises(StorageError):
            manager.create_file("f")

    def test_delete_file(self):
        _, manager, _ = _make_cache()
        manager.create_file("f")
        manager.write_page("f", 0, _page(0))
        manager.delete_file("f")
        assert not manager.exists("f")
        with pytest.raises(StorageError):
            manager.read_page("f", 0)

    def test_compressed_file_is_smaller(self):
        _, plain_manager, _ = _make_cache(codec=None)
        _, zipped_manager, _ = _make_cache(codec=ZlibCodec())
        for manager in (plain_manager, zipped_manager):
            manager.create_file("f")
            for page_no in range(10):
                manager.write_page("f", page_no, b"A" * PAGE_SIZE)
        assert zipped_manager.file_size("f") < plain_manager.file_size("f")

    def test_compressed_read_roundtrip(self):
        _, manager, _ = _make_cache(codec=ZlibCodec())
        manager.create_file("f")
        pages = [bytes([i]) * PAGE_SIZE for i in range(5)]
        for page_no, page in enumerate(pages):
            manager.write_page("f", page_no, page)
        for page_no, page in enumerate(pages):
            assert manager.read_page("f", page_no) == page

    def test_device_accounting(self):
        device, manager, _ = _make_cache()
        manager.create_file("f")
        manager.write_page("f", 0, _page(7))
        manager.read_page("f", 0)
        assert device.stats.bytes_written == PAGE_SIZE
        assert device.stats.bytes_read == PAGE_SIZE

    def test_real_file_backend_roundtrip(self, tmp_path):
        device = SimulatedStorageDevice()
        manager = FileManager(str(tmp_path), device, PAGE_SIZE, ZlibCodec())
        manager.create_file("data")
        manager.write_page("data", 0, _page(3))
        manager.write_page("data", 1, _page(4))
        assert manager.read_page("data", 1) == _page(4)
        manager.close()
        assert (tmp_path / "data").exists()


class TestBufferCache:
    def test_hits_and_misses(self):
        _, manager, cache = _make_cache()
        manager.create_file("f")
        cache.write_page("f", 0, _page(1))
        cache.read_page("f", 0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0
        cache.clear()
        cache.read_page("f", 0)
        assert cache.stats.misses == 1

    def test_eviction_lru_order(self):
        device, manager, cache = _make_cache(capacity=2)
        manager.create_file("f")
        for page_no in range(3):
            cache.write_page("f", page_no, _page(page_no))
        assert cache.resident_pages == 2
        assert cache.stats.evictions == 1
        before = device.stats.bytes_read
        cache.read_page("f", 2)  # most recent: still cached
        assert device.stats.bytes_read == before

    def test_pinned_pages_not_evicted(self):
        _, manager, cache = _make_cache(capacity=2)
        manager.create_file("f")
        cache.write_page("f", 0, _page(0))
        cache.write_page("f", 1, _page(1))
        cache.read_page("f", 0, pin=True)
        cache.read_page("f", 1, pin=True)
        with pytest.raises(BufferCacheFullError):
            cache.write_page("f", 2, _page(2))
        cache.unpin("f", 0)
        cache.write_page("f", 3, _page(3))  # now eviction can proceed

    def test_invalidate_file(self):
        _, manager, cache = _make_cache()
        manager.create_file("f")
        cache.write_page("f", 0, _page(0))
        cache.invalidate_file("f")
        assert cache.resident_pages == 0

    def test_compressed_pages_decompressed_in_cache(self):
        _, manager, cache = _make_cache(codec=ZlibCodec())
        manager.create_file("f")
        page = b"B" * PAGE_SIZE
        cache.write_page("f", 0, page)
        cache.clear()
        assert cache.read_page("f", 0) == page


class TestWriteAheadLog:
    def test_append_and_replay(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, key=1, payload=b"x")
        wal.append(LogRecordType.DELETE, "ds", 0, key=2)
        wal.append(LogRecordType.INSERT, "other", 1, key=3, payload=b"y")
        replayed = list(wal.replay(dataset="ds", partition=0))
        assert [record.key for record in replayed] == [1, 2]

    def test_truncate(self):
        wal = WriteAheadLog()
        first = wal.append(LogRecordType.INSERT, "ds", 0, key=1)
        wal.append(LogRecordType.INSERT, "ds", 0, key=2)
        wal.truncate(first.lsn)
        assert [record.key for record in wal.replay()] == [2]
        with pytest.raises(WALError):
            wal.truncate(0)

    def test_flush_markers_excluded_from_replay(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.FLUSH_START, "ds", 0)
        wal.append(LogRecordType.INSERT, "ds", 0, key=1)
        wal.append(LogRecordType.FLUSH_END, "ds", 0)
        assert [record.key for record in wal.replay()] == [1]

    def test_device_accounting(self):
        device = SimulatedStorageDevice()
        wal = WriteAheadLog(device)
        wal.append(LogRecordType.INSERT, "ds", 0, key=1, payload=b"abc")
        assert device.per_class["log"].bytes_written > 0

    def test_drop_after_simulates_crash(self):
        wal = WriteAheadLog()
        record = wal.append(LogRecordType.INSERT, "ds", 0, key=1)
        wal.append(LogRecordType.INSERT, "ds", 0, key=2)
        wal.drop_after(record.lsn)
        assert [r.key for r in wal.replay()] == [1]
