"""Tests for the analysis layer itself: lint rules, suppressions, locktrack.

Each rule gets a positive fixture (the violation is found), a negative one
(clean code passes), and a suppression one (``# repro-lint: disable=RULE``
silences exactly that finding).  The locktrack tests drive the wrappers
directly — no monkeypatched ``threading`` needed — and the meta-test at the
bottom asserts the shipped tree is lint-clean, which is what keeps every
future PR honest.
"""

import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis import locktrack
from repro.analysis.lint import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    collect_modules,
    run_analysis,
)
from repro.analysis.lock_hierarchy import LOCK_HIERARCHY, LockDecl
from repro.analysis.locktrack import LockTracker, TrackedLock, TrackedRLock
from repro.analysis.rules import default_rules
from repro.analysis.rules.knob_rules import KnobAccessorRule
from repro.analysis.rules.lock_rules import (
    BlockingUnderLockRule,
    GuardedByRule,
    LockHierarchyRule,
)
from repro.analysis.rules.obs_rules import MetricNameRule
from repro.analysis.rules.parity_rules import RowBatchParityRule

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path, source, rules, name="fixture.py", readme=""):
    """Write ``source`` into a temp module and run ``rules`` over it."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return run_analysis([tmp_path], rules, readme_text=readme, root=tmp_path)


def make_hierarchy(*decls):
    return {decl.key: decl for decl in decls}


# ---------------------------------------------------------------------------
# LOCK001 — no blocking calls under a lock
# ---------------------------------------------------------------------------

class TestLock001:
    def test_sleep_under_lock_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading, time\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def work(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)\n"
        ), [BlockingUnderLockRule(hierarchy={})])
        assert [f.rule_id for f in findings] == ["LOCK001"]
        assert "time.sleep" in findings[0].message
        assert findings[0].line == 7

    @pytest.mark.parametrize("call", [
        "open('x')", "fut.result()", "thread.join()",
        "handle.read()", "handle.flush()", "device.write_page(b'x')",
    ])
    def test_other_blocking_calls_flagged(self, tmp_path, call):
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def work(self, fut, thread, handle, device):\n"
            "        with self._lock:\n"
            f"            {call}\n"
        ), [BlockingUnderLockRule(hierarchy={})])
        assert [f.rule_id for f in findings] == ["LOCK001"]

    def test_clean_body_and_str_join_pass(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def work(self, items):\n"
            "        with self._lock:\n"
            "            self.value = ','.join(items)\n"  # str.join has an arg
            "            self.count += 1\n"
        ), [BlockingUnderLockRule(hierarchy={})])
        assert findings == []

    def test_condition_wait_is_not_blocking(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def work(self):\n"
            "        with self._rotation_cond:\n"
            "            self._rotation_cond.wait(timeout=1)\n"
        ), [BlockingUnderLockRule(hierarchy={})])
        assert findings == []

    def test_allows_blocking_lock_exempt(self, tmp_path):
        hierarchy = make_hierarchy(LockDecl(
            "C", "_lock", 10, "lock", "fixture.py", allows_blocking=True))
        findings = lint_source(tmp_path, (
            "import threading, time\n"
            "class C:\n"
            "    def work(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)\n"
        ), [BlockingUnderLockRule(hierarchy=hierarchy)])
        assert findings == []

    def test_nested_function_body_not_scanned(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading, time\n"
            "class C:\n"
            "    def work(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                time.sleep(0.1)\n"
            "            self.callback = later\n"
        ), [BlockingUnderLockRule(hierarchy={})])
        assert findings == []

    def test_suppression(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading, time\n"
            "class C:\n"
            "    def work(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.1)  # repro-lint: disable=LOCK001\n"
        ), [BlockingUnderLockRule(hierarchy={})])
        assert findings == []


# ---------------------------------------------------------------------------
# LOCK002 — declared hierarchy, visible creations, descending order
# ---------------------------------------------------------------------------

class TestLock002:
    def test_undeclared_lock_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
        ), [LockHierarchyRule(hierarchy={}, check_stale=False)])
        assert [f.rule_id for f in findings] == ["LOCK002"]
        assert "C._lock" in findings[0].message

    def test_declared_lock_passes(self, tmp_path):
        hierarchy = make_hierarchy(LockDecl("C", "_lock", 10, "lock", "fixture.py"))
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
        ), [LockHierarchyRule(hierarchy=hierarchy)])
        assert findings == []

    def test_bare_lock_import_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from threading import Lock\n"
        ), [LockHierarchyRule(hierarchy={}, check_stale=False)])
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_noarg_condition_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
        ), [LockHierarchyRule(hierarchy={}, check_stale=False)])
        assert len(findings) == 1
        assert "internal RLock" in findings[0].message

    def test_condition_over_declared_lock_is_alias(self, tmp_path):
        hierarchy = make_hierarchy(LockDecl("C", "_lock", 10, "lock", "fixture.py"))
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._idle = threading.Condition(self._lock)\n"
        ), [LockHierarchyRule(hierarchy=hierarchy)])
        assert findings == []

    def test_ascending_nested_acquisition_flagged(self, tmp_path):
        hierarchy = make_hierarchy(
            LockDecl("C", "_low", 10, "lock", "fixture.py"),
            LockDecl("C", "_high", 90, "lock", "fixture.py"))
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def work(self):\n"
            "        with self._low:\n"
            "            with self._high:\n"
            "                pass\n"
        ), [LockHierarchyRule(hierarchy=hierarchy, check_stale=False)])
        assert [f.rule_id for f in findings] == ["LOCK002"]
        assert "strictly descend" in findings[0].message

    def test_descending_nested_acquisition_passes(self, tmp_path):
        hierarchy = make_hierarchy(
            LockDecl("C", "_low", 10, "lock", "fixture.py"),
            LockDecl("C", "_high", 90, "lock", "fixture.py"))
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def work(self):\n"
            "        with self._high:\n"
            "            with self._low:\n"
            "                pass\n"
        ), [LockHierarchyRule(hierarchy=hierarchy, check_stale=False)])
        assert findings == []

    def test_stale_declaration_flagged(self, tmp_path):
        hierarchy = make_hierarchy(LockDecl("Gone", "_lock", 10, "lock", "fixture.py"))
        findings = lint_source(tmp_path, (
            "import threading\n"
        ), [LockHierarchyRule(hierarchy=hierarchy)])
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_suppression(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        # repro-lint: disable=LOCK002\n"
            "        self._lock = threading.Lock()\n"
        ), [LockHierarchyRule(hierarchy={}, check_stale=False)])
        assert findings == []


# ---------------------------------------------------------------------------
# LOCK003 — guarded-by annotations
# ---------------------------------------------------------------------------

class TestLock003:
    FIXTURE = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []  # guarded-by: _lock\n"
        "    def good(self):\n"
        "        with self._lock:\n"
        "            self._items.append(1)\n"
        "    def bad(self):\n"
        "        self._items.append(2)\n"
        "    def reader(self):\n"
        "        return list(self._items)\n"
    )

    def test_unlocked_mutation_warns(self, tmp_path):
        findings = lint_source(tmp_path, self.FIXTURE, [GuardedByRule()])
        assert [f.rule_id for f in findings] == ["LOCK003"]
        assert findings[0].severity == SEVERITY_WARNING
        assert "bad()" in findings[0].message

    def test_reads_are_exempt(self, tmp_path):
        findings = lint_source(tmp_path, self.FIXTURE, [GuardedByRule()])
        assert all("reader" not in f.message for f in findings)

    def test_requires_lock_marker_exempts(self, tmp_path):
        fixture = self.FIXTURE.replace(
            "    def bad(self):\n",
            "    # requires-lock: _lock\n    def bad(self):\n")
        findings = lint_source(tmp_path, fixture, [GuardedByRule()])
        assert findings == []

    def test_annotation_on_preceding_line(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        # guarded-by: _lock\n"
            "        self._items = []\n"
            "    def bad(self):\n"
            "        self._items = []\n"
        ), [GuardedByRule()])
        assert len(findings) == 1

    def test_suppression(self, tmp_path):
        fixture = self.FIXTURE.replace(
            "        self._items.append(2)\n",
            "        self._items.append(2)  # repro-lint: disable=LOCK003\n")
        findings = lint_source(tmp_path, fixture, [GuardedByRule()])
        assert findings == []


# ---------------------------------------------------------------------------
# KNOB001 — env accessor discipline + README documentation
# ---------------------------------------------------------------------------

class TestKnob001:
    def test_direct_environ_read_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import os\n"
            "value = os.environ.get('REPRO_THING', '')\n"
        ), [KnobAccessorRule()])
        assert [f.rule_id for f in findings] == ["KNOB001"]
        assert "os.environ" in findings[0].message

    def test_os_getenv_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import os\n"
            "value = os.getenv('REPRO_THING')\n"
        ), [KnobAccessorRule()])
        assert len(findings) == 1

    def test_accessor_module_is_exempt(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import os\n"
            "def env_str(name, default=''):\n"
            "    return os.environ.get(name, default).strip()\n"
        ), [KnobAccessorRule()], name="config.py")
        assert findings == []

    def test_undocumented_knob_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from repro.config import env_flag\n"
            "ENABLED = env_flag('REPRO_MYSTERY')\n"
        ), [KnobAccessorRule()], readme="| `REPRO_OTHER` | off | ... |")
        assert [f.rule_id for f in findings] == ["KNOB001"]
        assert "REPRO_MYSTERY" in findings[0].message

    def test_documented_knob_passes(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from repro.config import env_flag\n"
            "ENABLED = env_flag('REPRO_MYSTERY')\n"
        ), [KnobAccessorRule()], readme="| `REPRO_MYSTERY` | off | ... |")
        assert findings == []

    def test_constant_indirection_resolved(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from repro.config import env_str\n"
            "MY_ENV_VAR = 'REPRO_INDIRECT'\n"
            "value = env_str(MY_ENV_VAR)\n"
        ), [KnobAccessorRule()], readme="nothing documented")
        assert len(findings) == 1
        assert "REPRO_INDIRECT" in findings[0].message

    def test_suppression(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import os\n"
            "value = os.environ.get('HOME')  # repro-lint: disable=KNOB001\n"
        ), [KnobAccessorRule()])
        assert findings == []


# ---------------------------------------------------------------------------
# OBS001 — metric naming and uniqueness
# ---------------------------------------------------------------------------

class TestObs001:
    def test_bad_name_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def publish(registry):\n"
            "    registry.counter('Bad-Name.total')\n"
        ), [MetricNameRule()])
        assert [f.rule_id for f in findings] == ["OBS001"]
        assert "convention" in findings[0].message

    def test_kind_conflict_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def publish(registry):\n"
            "    registry.counter('things_total')\n"
            "    registry.gauge('things_total')\n"
        ), [MetricNameRule()])
        assert len(findings) == 1
        assert "gauge" in findings[0].message and "counter" in findings[0].message

    def test_label_conflict_flagged(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def publish(registry, kind):\n"
            "    registry.counter('tasks_total', kind=kind)\n"
            "    registry.counter('tasks_total')\n"
        ), [MetricNameRule()])
        assert len(findings) == 1
        assert "labels" in findings[0].message

    def test_consistent_reuse_passes(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def publish(registry, kind):\n"
            "    registry.counter('tasks_total', kind=kind)\n"
            "    registry.counter('tasks_total', kind='merge')\n"
            "    registry.gauge('queue_depth')\n"
        ), [MetricNameRule()])
        assert findings == []

    def test_suppression(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def publish(registry):\n"
            "    registry.counter('Bad-Name')  # repro-lint: disable=OBS001\n"
        ), [MetricNameRule()])
        assert findings == []


# ---------------------------------------------------------------------------
# PAR001 — row/batch dispatch parity
# ---------------------------------------------------------------------------

class TestPar001:
    EXPRESSIONS = (
        "class Expr:\n"
        "    pass\n"
        "class Literal(Expr):\n"
        "    pass\n"
        "class Shiny(Expr):\n"
        "    pass\n"
    )

    def write_pair(self, tmp_path, batch_source):
        (tmp_path / "query").mkdir(exist_ok=True)
        (tmp_path / "query" / "expressions.py").write_text(
            self.EXPRESSIONS, encoding="utf-8")
        (tmp_path / "query" / "batch_compile.py").write_text(
            batch_source, encoding="utf-8")
        return run_analysis([tmp_path], [RowBatchParityRule()],
                            readme_text="", root=tmp_path)

    def test_unhandled_subclass_flagged(self, tmp_path):
        findings = self.write_pair(tmp_path, (
            "from .expressions import Literal\n"
            "ROW_ONLY_EXPRESSIONS = {}\n"
            "def compile_expr(expr):\n"
            "    if isinstance(expr, Literal):\n"
            "        return lambda batch: []\n"
        ))
        assert [f.rule_id for f in findings] == ["PAR001"]
        assert "Shiny" in findings[0].message

    def test_registered_fallback_passes(self, tmp_path):
        findings = self.write_pair(tmp_path, (
            "from .expressions import Literal\n"
            "ROW_ONLY_EXPRESSIONS = {'Shiny': 'needs per-row dynamic dispatch'}\n"
            "def compile_expr(expr):\n"
            "    if isinstance(expr, Literal):\n"
            "        return lambda batch: []\n"
        ))
        assert findings == []

    def test_stale_registry_entry_flagged(self, tmp_path):
        findings = self.write_pair(tmp_path, (
            "from .expressions import Literal, Shiny\n"
            "ROW_ONLY_EXPRESSIONS = {'Shiny': 'old reason'}\n"
            "def compile_expr(expr):\n"
            "    if isinstance(expr, (Literal, Shiny)):\n"
            "        return lambda batch: []\n"
        ))
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_copied_table_flagged(self, tmp_path):
        findings = self.write_pair(tmp_path, (
            "from .expressions import Literal, Shiny\n"
            "ROW_ONLY_EXPRESSIONS = {}\n"
            "_FUNCTIONS = {'lower': str.lower}\n"
            "def compile_expr(expr):\n"
            "    if isinstance(expr, (Literal, Shiny)):\n"
            "        return lambda batch: []\n"
        ))
        assert len(findings) == 1
        assert "drift" in findings[0].message

    def test_shipped_tree_parity_holds(self):
        findings = run_analysis(
            [REPO_ROOT / "src" / "repro"], [RowBatchParityRule()],
            readme_text="")
        assert findings == []


# ---------------------------------------------------------------------------
# locktrack — dynamic tracker unit tests
# ---------------------------------------------------------------------------

class TestLockTracker:
    def make_locks(self, tracker, *keys):
        return [TrackedLock(threading.Lock(), key, tracker) for key in keys]

    def test_no_cycle_on_consistent_order(self):
        tracker = LockTracker()
        a, b = self.make_locks(tracker, "T.a", "T.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert tracker.cycles() == []
        assert tracker.problems() == []
        assert ("T.a", "T.b") in tracker.edges()

    def test_cycle_detected_across_threads(self):
        tracker = LockTracker()
        a, b = self.make_locks(tracker, "T.a", "T.b")

        with a:
            with b:
                pass

        def inverted():
            with b:
                with a:
                    pass

        worker = threading.Thread(target=inverted)
        worker.start()
        worker.join()

        cycles = tracker.cycles()
        assert cycles == [["T.a", "T.b"]]
        problems = tracker.problems()
        assert any("lock-order cycle" in line for line in problems)
        assert any("edge" in line for line in problems)

    def test_self_cycle_on_same_key(self):
        tracker = LockTracker()
        a1 = TrackedLock(threading.Lock(), "T.a", tracker)
        a2 = TrackedLock(threading.Lock(), "T.a", tracker)
        with a1:
            with a2:
                pass
        assert tracker.cycles() == [["T.a"]]

    def test_hierarchy_violation_reported(self):
        tracker = LockTracker()
        # Tracer._lock is level 20, LSMBTree._maintenance_lock is level 100:
        # acquiring the maintenance lock under the tracer lock ascends.
        low = TrackedLock(threading.Lock(), "Tracer._lock", tracker)
        high = TrackedLock(threading.Lock(), "LSMBTree._maintenance_lock", tracker)
        with low:
            with high:
                pass
        violations = tracker.violations()
        assert len(violations) == 1
        assert violations[0][0] == "Tracer._lock"
        assert any("hierarchy violation" in line for line in tracker.problems())

    def test_rlock_reentrancy_counts_once(self):
        tracker = LockTracker()
        outer = TrackedLock(threading.Lock(), "T.outer", tracker)
        rlock = TrackedRLock(threading.RLock(), "T.r", tracker)
        with outer:
            with rlock:
                with rlock:  # re-entrant: no second logical acquisition
                    pass
        assert set(tracker.edges()) == {("T.outer", "T.r")}
        assert ("T.r", "T.r") not in tracker.edges()
        assert tracker.cycles() == []

    def test_condition_over_tracked_lock_is_tracked(self):
        tracker = LockTracker()
        inner = TrackedLock(threading.Lock(), "T.cond", tracker)
        condition = threading.Condition(inner)
        hits = []

        def waiter():
            with condition:
                hits.append("waiting")
                condition.wait(timeout=5)
                hits.append("woken")

        worker = threading.Thread(target=waiter)
        worker.start()
        while "waiting" not in hits:
            pass
        with condition:
            condition.notify()
        worker.join()
        assert hits == ["waiting", "woken"]
        # Both threads acquired/released cleanly: no held locks remain.
        assert tracker._stack() == []

    def test_install_wraps_engine_locks_only(self):
        # Under a REPRO_LOCKTRACK=1 session the conftest already installed
        # the tracker; leave it in place then (uninstalling mid-session
        # would stop tracking for the rest of the suite).
        already_installed = locktrack.get_tracker() is not None
        locktrack.install()
        try:
            # Created from repro engine code: the metrics lock becomes a
            # tracked wrapper keyed Owner.attr.
            from repro.obs.metrics import Counter

            counter = Counter("probe_counter")
            assert isinstance(counter._lock, TrackedLock)
            assert counter._lock._key == "Counter._lock"
            # Created from test (non-engine) code: stays a raw lock.
            raw = threading.Lock()
            assert not isinstance(raw, TrackedLock)
        finally:
            if not already_installed:
                locktrack.uninstall()
        if not already_installed:
            assert locktrack.get_tracker() is None
            assert locktrack._originals == {}

    def test_reset_clears_state(self):
        tracker = LockTracker()
        a, b = self.make_locks(tracker, "T.a", "T.b")
        with a:
            with b:
                pass
        assert tracker.edges()
        tracker.reset()
        assert tracker.edges() == {}
        assert tracker.problems() == []


# ---------------------------------------------------------------------------
# hierarchy sanity + meta checks
# ---------------------------------------------------------------------------

class TestHierarchyTable:
    def test_keys_match_owner_attr(self):
        for key, decl in LOCK_HIERARCHY.items():
            assert key == f"{decl.owner}.{decl.attr}"
            assert decl.level > 0
            assert decl.kind in ("lock", "rlock", "condition")

    def test_blocking_exemptions_are_the_documented_two(self):
        blocking = sorted(key for key, decl in LOCK_HIERARCHY.items()
                          if decl.allows_blocking)
        assert blocking == ["LSMBTree._maintenance_lock", "Tracer._export_lock"]


class TestCliMeta:
    def run_cli(self, *args, cwd=None):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True, cwd=cwd or REPO_ROOT, env=env)

    def test_shipped_tree_is_clean(self):
        result = self.run_cli("src/")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean: no findings" in result.stdout

    def test_seeded_violation_fails(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import os\n"
            "value = os.environ.get('REPRO_SNEAKY', '')\n",
            encoding="utf-8")
        result = self.run_cli(str(bad))
        assert result.returncode == 1
        assert "KNOB001" in result.stdout

    def test_list_rules_names_all_shipped_rules(self):
        result = self.run_cli("--list-rules")
        assert result.returncode == 0
        for rule_id in ("LOCK001", "LOCK002", "LOCK003",
                        "KNOB001", "OBS001", "PAR001"):
            assert rule_id in result.stdout

    def test_every_engine_lock_is_declared(self):
        """Acceptance: every threading.Lock/RLock in src/repro has a level.

        Equivalent to LOCK002 reporting nothing across the tree, checked
        via the API so a regression pinpoints the lock in the assert.
        """
        findings = run_analysis([REPO_ROOT / "src" / "repro"],
                                [LockHierarchyRule()], readme_text="")
        assert [f.render() for f in findings] == []

    def test_default_rules_cover_required_ids(self):
        ids = {rule.rule_id for rule in default_rules()}
        assert {"LOCK001", "LOCK002", "LOCK003",
                "KNOB001", "OBS001", "PAR001"} <= ids

    def test_parse_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        findings = run_analysis([tmp_path], default_rules(), readme_text="")
        assert [f.rule_id for f in findings] == ["PARSE"]
        assert findings[0].severity == SEVERITY_ERROR
