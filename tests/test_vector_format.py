"""Unit tests for the vector-based format: encode/decode, access, compaction."""

import pytest

from repro.errors import DecodingError, SchemaError
from repro.schema import InferredSchema
from repro.types import (
    ADate,
    AMultiset,
    APoint,
    Datatype,
    FieldDeclaration,
    MISSING,
    TypeTag,
    deep_equals,
    open_only_primary_key,
)
from repro.vector import (
    VectorEncoder,
    VectorRecordView,
    compact_record,
    expand_record,
    is_compacted,
    record_total_length,
)

PAPER_RECORD = {
    "id": 6,
    "name": "Ann",
    "salaries": [70000, 90000],
    "age": 26,
}

APPENDIX_RECORD = {
    "id": 1,
    "name": "Ann",
    "dependents": AMultiset([
        {"name": "Bob", "age": 6},
        {"name": "Carol", "age": 10},
        "Not_Available",
    ]),
    "employment_date": ADate.from_iso("2018-09-20"),
    "branch_location": APoint(24.0, -56.12),
}


def _datatype():
    return open_only_primary_key("EmployeeType")


class TestRoundTrip:
    def test_paper_record_roundtrip(self):
        datatype = _datatype()
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        view = VectorRecordView(payload, datatype)
        assert deep_equals(view.materialize(), PAPER_RECORD)

    def test_appendix_record_roundtrip(self):
        datatype = _datatype()
        payload = VectorEncoder(datatype).encode(APPENDIX_RECORD)
        view = VectorRecordView(payload, datatype)
        assert deep_equals(view.materialize(), APPENDIX_RECORD)

    def test_no_datatype_roundtrip(self):
        record = {"a": 1, "b": {"c": [1, 2, {"d": "x"}]}, "e": None}
        payload = VectorEncoder(None).encode(record)
        assert deep_equals(VectorRecordView(payload).materialize(), record)

    def test_empty_record(self):
        payload = VectorEncoder(None).encode({})
        assert VectorRecordView(payload).materialize() == {}

    def test_deeply_nested(self):
        record = {"l1": {"l2": {"l3": {"l4": [{"l5": 1}]}}}}
        payload = VectorEncoder(None).encode(record)
        assert deep_equals(VectorRecordView(payload).materialize(), record)

    def test_header_total_length_matches(self):
        payload = VectorEncoder(_datatype()).encode(PAPER_RECORD)
        assert record_total_length(payload) == len(payload)

    def test_structure_skeleton(self):
        datatype = _datatype()
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        skeleton = VectorRecordView(payload, datatype).structure()
        assert set(skeleton) == {"id", "name", "salaries", "age"}
        assert skeleton["name"] == ""          # placeholder, not the value
        assert skeleton["salaries"] == [0, 0]  # same shape, placeholder items


class TestGetValues:
    def test_single_field(self):
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(PAPER_RECORD), datatype)
        assert view.get_field("name") == "Ann"
        assert view.get_field("age") == 26

    def test_consolidated_access(self):
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(PAPER_RECORD), datatype)
        age, name = view.get_values(("age",), ("name",))
        assert age == 26
        assert name == "Ann"

    def test_nested_and_indexed_access(self):
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(APPENDIX_RECORD), datatype)
        assert view.get_field("dependents", 0, "name") == "Bob"
        assert view.get_field("dependents", 2) == "Not_Available"
        assert view.get_field("salaries", 0) is MISSING

    def test_wildcard_access_is_aligned(self):
        # One entry per collection item: the scalar "Not_Available" dependent
        # has no .name, so it contributes a MISSING hole rather than silently
        # shrinking the result (keeps wildcard extraction aligned with the
        # collection's cardinality, as DictRecordView already does).
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(APPENDIX_RECORD), datatype)
        (names,) = view.get_values(("dependents", "*", "name"))
        assert names == ["Bob", "Carol", MISSING]

    def test_wildcard_over_scalar_collection_passes_value_through(self):
        # A non-collection value at the wildcard prefix is returned as-is so
        # callers can apply SQL++ singleton-collection semantics; absent
        # prefixes stay [].
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(PAPER_RECORD), datatype)
        (name_items,) = view.get_values(("name", "*"))
        assert name_items == "Ann"
        (missing_items,) = view.get_values(("nope", "*"))
        assert missing_items == []

    def test_wildcard_collects_items(self):
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(PAPER_RECORD), datatype)
        (salaries,) = view.get_values(("salaries", "*"))
        assert salaries == [70000, 90000]

    def test_nested_value_materialized_by_exact_path(self):
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(APPENDIX_RECORD), datatype)
        (first_dependent,) = view.get_values(("dependents", 0))
        assert first_dependent == {"name": "Bob", "age": 6}

    def test_missing_path(self):
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(PAPER_RECORD), datatype)
        assert view.get_field("does_not_exist") is MISSING
        assert view.get_field("name", "oops") is MISSING

    def test_get_items(self):
        datatype = _datatype()
        view = VectorRecordView(VectorEncoder(datatype).encode(APPENDIX_RECORD), datatype)
        assert len(view.get_items("dependents")) == 3
        assert view.get_items("missing_field") == []


class TestCompaction:
    def _schema_for(self, records, datatype):
        schema = InferredSchema(datatype)
        for record in records:
            schema.observe(record)
        return schema

    def test_compaction_shrinks_record(self):
        datatype = _datatype()
        schema = self._schema_for([PAPER_RECORD], datatype)
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        compacted = compact_record(payload, schema.dictionary)
        assert is_compacted(compacted)
        assert not is_compacted(payload)
        assert len(compacted) < len(payload)

    def test_compacted_roundtrip_with_dictionary(self):
        datatype = _datatype()
        schema = self._schema_for([APPENDIX_RECORD], datatype)
        payload = VectorEncoder(datatype).encode(APPENDIX_RECORD)
        compacted = compact_record(payload, schema.dictionary)
        view = VectorRecordView(compacted, datatype, schema.dictionary)
        assert deep_equals(view.materialize(), APPENDIX_RECORD)
        assert view.get_field("dependents", 1, "name") == "Carol"

    def test_compaction_is_idempotent(self):
        datatype = _datatype()
        schema = self._schema_for([PAPER_RECORD], datatype)
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        compacted = compact_record(payload, schema.dictionary)
        assert compact_record(compacted, schema.dictionary) == compacted

    def test_expand_restores_original(self):
        datatype = _datatype()
        schema = self._schema_for([PAPER_RECORD], datatype)
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        compacted = compact_record(payload, schema.dictionary)
        expanded = expand_record(compacted, schema.dictionary)
        assert expanded == payload

    def test_compaction_requires_known_names(self):
        datatype = _datatype()
        schema = InferredSchema(datatype)  # empty: no names registered
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        with pytest.raises(SchemaError):
            compact_record(payload, schema.dictionary)

    def test_compacted_without_dictionary_fails_to_decode(self):
        datatype = _datatype()
        schema = self._schema_for([PAPER_RECORD], datatype)
        payload = compact_record(VectorEncoder(datatype).encode(PAPER_RECORD), schema.dictionary)
        with pytest.raises(DecodingError):
            VectorRecordView(payload, datatype).materialize()

    def test_compacted_smaller_than_adm_closed_for_nested_data(self):
        """Vector-based compacted records avoid per-nested-value offsets.

        The advantage shows on records with many nested values (the paper's
        Sensors dataset, whose readings are arrays of small objects); tiny
        flat records can be below the vector format's fixed header overhead.
        """
        from repro.adm import ADMEncoder

        record = {
            "id": 9,
            "readings": [{"value": float(i), "timestamp": 1556496000000 + i} for i in range(20)],
        }
        datatype = _datatype()
        closed = Datatype.from_example("T", record, primary_key="id")
        adm_closed = ADMEncoder(closed).encode(record)
        schema = self._schema_for([record], datatype)
        compacted = compact_record(VectorEncoder(datatype).encode(record), schema.dictionary)
        assert len(compacted) < len(adm_closed)


class TestDeclaredFields:
    def test_declared_index_used_for_primary_key(self):
        datatype = _datatype()
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        open_payload = VectorEncoder(None).encode(PAPER_RECORD)
        # Declaring "id" removes its name bytes from the record.
        assert len(payload) < len(open_payload)

    def test_declared_field_access_needs_datatype(self):
        datatype = _datatype()
        payload = VectorEncoder(datatype).encode(PAPER_RECORD)
        with pytest.raises(DecodingError):
            VectorRecordView(payload).materialize()
