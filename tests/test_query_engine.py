"""Tests for the query engine: expressions, operators, optimizer, executor."""

import pytest

from repro import Dataset, StorageEnvironment, StorageFormat
from repro.query import (
    And,
    Comparison,
    Exists,
    Func,
    Literal,
    Or,
    QueryExecutor,
    Var,
    field,
    lit,
    scan,
)
from repro.query.expressions import EXTRACTED, Not
from repro.query.optimizer import Optimizer
from repro.types import MISSING

RECORDS = [
    {
        "id": i,
        "user": {"name": f"user{i % 10}", "verified": i % 4 == 0},
        "text": "x" * (10 + i % 20),
        "timestamp_ms": 1_000_000 + (i * 37) % 1000,
        "entities": {"hashtags": [{"text": "jobs" if i % 5 == 0 else f"tag{i % 7}", "pos": 0}]},
        "readings": [{"temp": float(i % 50), "ts": i}, {"temp": float((i * 3) % 50), "ts": i + 1}],
    }
    for i in range(120)
]


def _dataset(storage_format=StorageFormat.INFERRED):
    dataset = Dataset.create("tweets", storage_format,
                             environment=StorageEnvironment.for_device(
                                 __import__("repro").DeviceKind.NVME_SSD, page_size=4096))
    dataset.insert_all(RECORDS)
    dataset.flush_all()
    return dataset


@pytest.fixture(scope="module")
def inferred_dataset():
    return _dataset(StorageFormat.INFERRED)


@pytest.fixture(scope="module")
def open_dataset():
    return _dataset(StorageFormat.OPEN)


class TestExpressions:
    def test_field_access_on_dict(self):
        env = {"t": {"a": {"b": [1, 2, 3]}}}
        assert field("t", "a", "b", 1).evaluate(env) == 2
        assert field("t", "a", "zzz").evaluate(env) is MISSING

    def test_extracted_values_short_circuit(self):
        env = {"t": {"a": 1}, EXTRACTED: {("t", ("a",)): 99}}
        assert field("t", "a").evaluate(env) == 99

    def test_comparison_missing_propagation(self):
        env = {"t": {"a": 5}}
        assert Comparison(">", field("t", "b"), lit(1)).evaluate(env) is MISSING
        assert And(Comparison(">", field("t", "b"), lit(1))).evaluate(env) is False

    def test_boolean_operators(self):
        env = {}
        assert And(lit(True), lit(1)).evaluate(env) is True
        assert And(lit(True), lit(0)).evaluate(env) is False
        assert Or(lit(False), lit(3)).evaluate(env) is True
        assert Not(lit(False)).evaluate(env) is True

    def test_functions(self):
        env = {"t": {"name": "Ann", "tags": ["a", "b"]}}
        assert Func("length", field("t", "name")).evaluate(env) == 3
        assert Func("lowercase", lit("ABC")).evaluate(env) == "abc"
        assert Func("array_count", field("t", "tags")).evaluate(env) == 2
        assert Func("array_contains", field("t", "tags"), lit("a")).evaluate(env) is True
        assert Func("is_array", field("t", "name")).evaluate(env) is False

    def test_exists(self):
        env = {"t": {"hashtags": [{"text": "jobs"}, {"text": "other"}]}}
        predicate = Comparison("=", field("ht", "text"), lit("jobs"))
        assert Exists(field("t", "hashtags"), "ht", predicate).evaluate(env) is True
        bad = Comparison("=", field("ht", "text"), lit("nope"))
        assert Exists(field("t", "hashtags"), "ht", bad).evaluate(env) is False

    def test_unknown_function_rejected(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            Func("no_such_function", lit(1))


class TestOptimizer:
    def test_consolidation_collects_paths(self):
        spec = (scan("t")
                .where(Comparison(">", field("t", "timestamp_ms"), lit(5)))
                .group_by(("name", field("t", "user", "name")))
                .aggregate("avg_len", "avg", Func("length", field("t", "text")))
                .build())
        plan = Optimizer().plan(spec, uses_vector_format=True)
        assert plan.consolidate
        assert ("timestamp_ms",) in plan.scan_paths
        assert ("user", "name") in plan.scan_paths
        assert ("text",) in plan.scan_paths

    def test_no_consolidation_for_adm_formats(self):
        spec = scan("t").count_star().build()
        plan = Optimizer().plan(spec, uses_vector_format=False)
        assert not plan.consolidate

    def test_unnest_pushdown(self):
        spec = (scan("s")
                .unnest(field("s", "readings"), "r")
                .group_by(("sid", field("s", "id")))
                .aggregate("avg_temp", "avg", field("r", "temp"))
                .build())
        plan = Optimizer().plan(spec, uses_vector_format=True)
        unnest_plan = plan.unnest_plans[0]
        assert unnest_plan.pushed_down
        assert unnest_plan.pushdown_paths[("temp",)] == ("readings", "*", "temp")
        assert ("readings", "*", "temp") in plan.scan_paths
        assert ("readings",) not in plan.scan_paths

    def test_unnest_pushdown_disabled_when_item_used_directly(self):
        spec = (scan("s")
                .unnest(field("s", "readings"), "r")
                .group_by(("sid", field("s", "id")))
                .aggregate("items", "listify", Var("r"))
                .build())
        plan = Optimizer().plan(spec, uses_vector_format=True)
        assert not plan.unnest_plans[0].pushed_down

    def test_exists_rewrite(self):
        predicate = Comparison("=", Func("lowercase", field("ht", "text")), lit("jobs"))
        spec = (scan("t")
                .where(Exists(field("t", "entities", "hashtags"), "ht", predicate))
                .count_star()
                .build())
        plan = Optimizer().plan(spec, uses_vector_format=True)
        assert ("entities", "hashtags", "*", "text") in plan.scan_paths
        rewritten = plan.effective_spec(spec)
        assert isinstance(rewritten.where, Exists)
        assert rewritten.where.collection.path == ("entities", "hashtags", "*", "text")

    def test_optimizations_can_be_disabled(self):
        spec = (scan("s")
                .unnest(field("s", "readings"), "r")
                .group_by(("sid", field("s", "id")))
                .aggregate("avg_temp", "avg", field("r", "temp"))
                .build())
        plan = Optimizer(consolidate_field_access=False).plan(spec, uses_vector_format=True)
        assert not plan.consolidate
        assert not plan.unnest_plans[0].pushed_down


class TestExecutorOnAllFormats:
    @pytest.mark.parametrize("fixture_name", ["inferred_dataset", "open_dataset"])
    def test_count_star(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        result = QueryExecutor().execute(dataset, scan("t").count_star().build())
        assert result.rows == [{"count": len(RECORDS)}]
        assert result.stats.records_scanned == len(RECORDS)

    @pytest.mark.parametrize("fixture_name", ["inferred_dataset", "open_dataset"])
    def test_group_by_avg_length(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        spec = (scan("t")
                .group_by(("uname", field("t", "user", "name")))
                .aggregate("a", "avg", Func("length", field("t", "text")))
                .order_by("a", descending=True)
                .limit(10)
                .build())
        result = QueryExecutor().execute(dataset, spec)
        assert len(result.rows) == 10
        expected = {}
        for record in RECORDS:
            expected.setdefault(record["user"]["name"], []).append(len(record["text"]))
        best = max(expected, key=lambda name: sum(expected[name]) / len(expected[name]))
        assert result.rows[0]["uname"] == best

    @pytest.mark.parametrize("fixture_name", ["inferred_dataset", "open_dataset"])
    def test_exists_filter_group(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        predicate = Comparison("=", Func("lowercase", field("ht", "text")), lit("jobs"))
        spec = (scan("t")
                .where(Exists(field("t", "entities", "hashtags"), "ht", predicate))
                .group_by(("uname", field("t", "user", "name")))
                .aggregate("c", "count", None)
                .order_by("c", descending=True)
                .limit(10)
                .build())
        result = QueryExecutor().execute(dataset, spec)
        total = sum(row["c"] for row in result.rows)
        assert total == sum(1 for record in RECORDS
                            if record["entities"]["hashtags"][0]["text"] == "jobs")

    @pytest.mark.parametrize("fixture_name", ["inferred_dataset", "open_dataset"])
    def test_order_by_timestamp(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        spec = (scan("t")
                .select_record()
                .order_by(field("t", "timestamp_ms"))
                .build())
        result = QueryExecutor().execute(dataset, spec)
        timestamps = [row["record"]["timestamp_ms"] for row in result.rows]
        assert timestamps == sorted(timestamps)
        assert len(result.rows) == len(RECORDS)

    @pytest.mark.parametrize("fixture_name", ["inferred_dataset", "open_dataset"])
    def test_unnest_aggregate(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        spec = (scan("s")
                .unnest(field("s", "readings"), "r")
                .aggregate("max_temp", "max", field("r", "temp"))
                .aggregate("min_temp", "min", field("r", "temp"))
                .aggregate("n", "count", None)
                .build())
        result = QueryExecutor().execute(dataset, spec)
        all_temps = [reading["temp"] for record in RECORDS for reading in record["readings"]]
        row = result.rows[0]
        assert row["max_temp"] == max(all_temps)
        assert row["min_temp"] == min(all_temps)
        assert row["n"] == len(all_temps)

    @pytest.mark.parametrize("fixture_name", ["inferred_dataset", "open_dataset"])
    def test_unnest_group_by(self, fixture_name, request):
        dataset = request.getfixturevalue(fixture_name)
        spec = (scan("s")
                .unnest(field("s", "readings"), "r")
                .group_by(("sid", field("s", "id")))
                .aggregate("avg_temp", "avg", field("r", "temp"))
                .order_by("avg_temp", descending=True)
                .limit(10)
                .build())
        result = QueryExecutor().execute(dataset, spec)
        assert len(result.rows) == 10
        expected_best = max(
            RECORDS,
            key=lambda record: sum(r["temp"] for r in record["readings"]) / len(record["readings"]),
        )
        assert result.rows[0]["sid"] == expected_best["id"]

    def test_where_selective_filter(self, inferred_dataset):
        spec = (scan("t")
                .where(And(Comparison(">=", field("t", "timestamp_ms"), lit(1_000_100)),
                           Comparison("<", field("t", "timestamp_ms"), lit(1_000_200))))
                .group_by(("uname", field("t", "user", "name")))
                .aggregate("c", "count", None)
                .build())
        result = QueryExecutor().execute(inferred_dataset, spec)
        expected = sum(1 for record in RECORDS if 1_000_100 <= record["timestamp_ms"] < 1_000_200)
        assert sum(row["c"] for row in result.rows) == expected

    def test_results_identical_with_and_without_optimizations(self, inferred_dataset):
        spec = (scan("s")
                .unnest(field("s", "readings"), "r")
                .group_by(("sid", field("s", "id")))
                .aggregate("avg_temp", "avg", field("r", "temp"))
                .order_by("sid")
                .build())
        optimized = QueryExecutor().execute(inferred_dataset, spec)
        unoptimized = QueryExecutor(consolidate_field_access=False,
                                    pushdown_through_unnest=False).execute(inferred_dataset, spec)
        assert optimized.rows == unoptimized.rows

    def test_limit_without_order_stops_early(self, inferred_dataset):
        spec = scan("t").select_record().limit(5).build()
        result = QueryExecutor().execute(inferred_dataset, spec)
        assert len(result.rows) == 5
        assert result.stats.records_scanned < len(RECORDS)

    def test_projection_of_fields(self, inferred_dataset):
        spec = (scan("t")
                .select(("tid", field("t", "id")), ("uname", field("t", "user", "name")))
                .build())
        result = QueryExecutor().execute(inferred_dataset, spec)
        assert len(result.rows) == len(RECORDS)
        assert set(result.rows[0]) == {"tid", "uname"}

    def test_let_clause(self, inferred_dataset):
        spec = (scan("t")
                .let("texts", field("t", "entities", "hashtags", "*", "text"))
                .where(Func("array_contains", Var("texts"), lit("jobs")))
                .count_star()
                .build())
        result = QueryExecutor().execute(inferred_dataset, spec)
        expected = sum(1 for record in RECORDS
                       if record["entities"]["hashtags"][0]["text"] == "jobs")
        assert result.rows[0]["count"] == expected

    def test_stats_io_accounting(self, inferred_dataset):
        executor = QueryExecutor(cold_cache=True)
        result = executor.execute(inferred_dataset, scan("t").count_star().build())
        assert result.stats.bytes_read > 0
        assert result.stats.simulated_io_seconds > 0
        assert result.stats.wall_seconds > 0


class TestSchemaBroadcast:
    def test_broadcast_only_for_repartitioning_queries_on_multipartition_datasets(self):
        dataset = Dataset.create("multi", StorageFormat.INFERRED, partitions=3)
        dataset.insert_all(RECORDS[:60])
        dataset.flush_all()
        executor = QueryExecutor()
        grouped = executor.execute(dataset, (scan("t")
                                             .group_by(("uname", field("t", "user", "name")))
                                             .aggregate("c", "count", None)
                                             .build()))
        assert grouped.stats.schema_broadcasts == 1
        assert grouped.stats.schema_broadcast_bytes > 0
        local_only = executor.execute(dataset, scan("t").select_record().limit(3).build())
        assert local_only.stats.schema_broadcasts == 0

    def test_no_broadcast_for_adm_datasets(self, open_dataset):
        executor = QueryExecutor()
        result = executor.execute(open_dataset, (scan("t")
                                                 .group_by(("uname", field("t", "user", "name")))
                                                 .aggregate("c", "count", None)
                                                 .build()))
        assert result.stats.schema_broadcasts == 0
