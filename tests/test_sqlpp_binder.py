"""Binder tests: AST → QuerySpec translation, scoping, and SQL++
MISSING/NULL semantics exercised end-to-end through the text front-end.
"""

import pytest

from repro import Dataset, StorageFormat, compile_sqlpp
from repro.errors import SqlppError
from repro.query import (
    And,
    Comparison,
    Exists,
    FieldAccess,
    Func,
    IsTest,
    Literal,
    QueryExecutor,
    Var,
)
from repro.types import MISSING


# ---------------------------------------------------------------------------
# spec translation
# ---------------------------------------------------------------------------

class TestBinding:
    def test_scan_projection_and_where(self):
        compiled = compile_sqlpp(
            "SELECT t.user.name AS uname FROM Tweets AS t WHERE t.lang = 'en'")
        spec = compiled.spec
        assert compiled.dataset == "Tweets"
        assert spec.record_var == "t"
        assert spec.projections == [("uname", spec.projections[0][1])]
        projection = spec.projections[0][1]
        assert isinstance(projection, FieldAccess)
        assert projection.source == "t" and projection.path == ("user", "name")
        assert isinstance(spec.where, Comparison) and spec.where.op == "="

    def test_select_star_matches_builder_select_record(self):
        spec = compile_sqlpp("SELECT * FROM T AS t").spec
        name, expr = spec.projections[0]
        assert name == "record" and isinstance(expr, Var) and expr.name == "t"

    def test_select_value_count_star(self):
        spec = compile_sqlpp("SELECT VALUE count(*) FROM T AS t").spec
        assert len(spec.aggregates) == 1
        aggregate = spec.aggregates[0]
        assert (aggregate.output, aggregate.function, aggregate.argument) == \
            ("count", "count", None)
        assert spec.projections == []

    def test_grouped_query_structure(self):
        spec = compile_sqlpp("""
            SELECT uname, avg(length(t.text)) AS a
            FROM Tweets AS t
            GROUP BY t.user.name AS uname
            ORDER BY a DESC
            LIMIT 10
        """).spec
        assert [name for name, _ in spec.group_keys] == ["uname"]
        assert spec.aggregates[0].function == "avg"
        assert isinstance(spec.aggregates[0].argument, Func)
        assert spec.order_by[0].expr_or_column == "a"
        assert spec.order_by[0].descending is True
        assert spec.limit == 10

    def test_select_alias_renames_group_key(self):
        spec = compile_sqlpp("""
            SELECT t.user.name AS who, count(*) AS c
            FROM T AS t GROUP BY t.user.name
        """).spec
        assert [name for name, _ in spec.group_keys] == ["who"]

    def test_group_alias_defaults_to_last_path_step(self):
        spec = compile_sqlpp(
            "SELECT name, count(*) AS c FROM T AS t GROUP BY t.user.name").spec
        assert spec.group_keys[0][0] == "name"

    def test_order_by_group_key_expression(self):
        spec = compile_sqlpp("""
            SELECT sid, count(*) AS c FROM T AS t
            GROUP BY t.sensor_id AS sid ORDER BY t.sensor_id
        """).spec
        assert spec.order_by[0].expr_or_column == "sid"

    def test_lets_unnests_and_scope(self):
        spec = compile_sqlpp("""
            SELECT VALUE count(*)
            FROM T AS t
            LET xs = array_distinct(t.tags[*].name)
            UNNEST xs AS x
            WHERE x != 'skip'
        """).spec
        assert spec.lets[0].name == "xs"
        assert isinstance(spec.lets[0].expr, Func)
        assert spec.unnests[0].item_var == "x"
        assert isinstance(spec.unnests[0].collection, Var)

    def test_quantifier_binds_exists(self):
        spec = compile_sqlpp("""
            SELECT * FROM T AS t
            WHERE SOME ht IN t.entities.hashtags SATISFIES ht.text = 'jobs'
        """).spec
        assert isinstance(spec.where, Exists)
        assert spec.where.item_var == "ht"

    def test_exists_keyword_binds_nonempty_test(self):
        spec = compile_sqlpp("SELECT * FROM T AS t WHERE EXISTS t.tags").spec
        assert isinstance(spec.where, Comparison) and spec.where.op == ">"
        assert isinstance(spec.where.left, Func) and spec.where.left.name == "array_count"

    def test_function_aliases(self):
        spec = compile_sqlpp("SELECT lower(t.x) AS v FROM T AS t").spec
        assert spec.projections[0][1].name == "lowercase"

    def test_negative_literal_folds(self):
        spec = compile_sqlpp("SELECT * FROM T AS t WHERE t.x > -5").spec
        right = spec.where.right
        assert isinstance(right, Literal) and right.value == -5

    def test_missing_literal_binds(self):
        spec = compile_sqlpp("SELECT * FROM T AS t WHERE t.x = MISSING").spec
        assert isinstance(spec.where.right, Literal)
        assert spec.where.right.value is MISSING

    def test_is_tests_bind(self):
        spec = compile_sqlpp("SELECT * FROM T AS t WHERE t.x IS NOT MISSING").spec
        assert isinstance(spec.where, IsTest)
        assert spec.where.kind == "missing" and spec.where.negated


# ---------------------------------------------------------------------------
# binder errors carry positions
# ---------------------------------------------------------------------------

class TestBinderErrors:
    @pytest.mark.parametrize("text,line,column,needle", [
        ("SELECT * FROM T AS t\nWHERE u.x = 1", 2, 7, "unbound identifier 'u'"),
        ("SELECT * FROM T AS t WHERE no_such_fn(t.x)", 1, 28, "unknown function"),
        ("SELECT * FROM T AS t WHERE avg(t.x) > 1", 1, 28, "aggregate function"),
        ("SELECT t.a, count(*) AS c FROM T AS t GROUP BY t.b", 1, 8,
         "neither an aggregate nor a GROUP BY key"),
        ("SELECT * FROM T AS t GROUP BY t.a", 1, 1, "SELECT \\*"),
        ("SELECT a, count(*) AS c FROM T AS t GROUP BY t.x AS a ORDER BY t.y", 1, 64,
         "must name an output column"),
        ("SELECT x, count(*) AS c FROM T AS t GROUP BY t.n + 1", 1, 46, "needs an AS alias"),
        ("SELECT VALUE t FROM T AS t LET t = 1", 1, 28, "already bound"),
        ("SELECT VALUE count(*) FROM T AS t UNNEST t.xs AS t", 1, 35, "already bound"),
        ("SELECT sum() AS s FROM T AS t", 1, 8, "needs an argument"),
    ])
    def test_positions(self, text, line, column, needle):
        with pytest.raises(SqlppError, match=needle) as excinfo:
            compile_sqlpp(text)
        assert (excinfo.value.line, excinfo.value.column) == (line, column), \
            str(excinfo.value)

    def test_dataset_query_surfaces_sqlpp_error(self):
        dataset = Dataset.create("T", StorageFormat.OPEN)
        with pytest.raises(SqlppError):
            dataset.query("SELECT * FROM T AS t WHERE")


# ---------------------------------------------------------------------------
# MISSING / NULL semantics through the text front-end
# ---------------------------------------------------------------------------

@pytest.fixture(params=[StorageFormat.OPEN, StorageFormat.INFERRED],
                ids=["open", "inferred"])
def sparse_dataset(request):
    """Records where 'score' is present / NULL / absent (MISSING)."""
    dataset = Dataset.create("Sparse", request.param)
    dataset.insert({"id": 1, "name": "with", "score": 10})
    dataset.insert({"id": 2, "name": "null", "score": None})
    dataset.insert({"id": 3, "name": "absent"})
    dataset.flush_all()
    return dataset


class TestMissingSemantics:
    def test_predicates_on_absent_fields_drop_records(self, sparse_dataset):
        rows = sparse_dataset.query(
            "SELECT t.name AS name FROM Sparse AS t WHERE t.score > 0").rows
        assert [row["name"] for row in rows] == ["with"]

    def test_negated_predicate_still_drops_unknowns(self, sparse_dataset):
        # NOT(MISSING) is MISSING, so neither the NULL nor the absent record
        # passes — classic SQL++ three-valued logic.
        rows = sparse_dataset.query(
            "SELECT t.name AS name FROM Sparse AS t WHERE NOT t.score > 0").rows
        assert rows == []

    def test_is_missing_vs_is_null(self, sparse_dataset):
        names = lambda rows: sorted(row["name"] for row in rows)
        missing = sparse_dataset.query(
            "SELECT t.name AS name FROM Sparse AS t WHERE t.score IS MISSING").rows
        null = sparse_dataset.query(
            "SELECT t.name AS name FROM Sparse AS t WHERE t.score IS NULL").rows
        unknown = sparse_dataset.query(
            "SELECT t.name AS name FROM Sparse AS t WHERE t.score IS UNKNOWN").rows
        known = sparse_dataset.query(
            "SELECT t.name AS name FROM Sparse AS t WHERE t.score IS NOT UNKNOWN").rows
        assert names(missing) == ["absent"]
        assert names(null) == ["null"]
        assert names(unknown) == ["absent", "null"]
        assert names(known) == ["with"]

    def test_projecting_absent_field_yields_missing(self, sparse_dataset):
        rows = sparse_dataset.query(
            "SELECT t.score AS score FROM Sparse AS t WHERE t.name = 'absent'").rows
        assert len(rows) == 1
        assert rows[0]["score"] is MISSING or isinstance(rows[0]["score"], type(MISSING))

    @pytest.mark.parametrize("consolidate", [True, False], ids=["optimized", "un-optimized"])
    def test_is_missing_inside_quantifier_survives_pushdown(self, consolidate):
        # The EXISTS pushdown rewrite must not change IS MISSING semantics:
        # wildcard extraction drops absent entries, so the optimizer has to
        # leave quantifiers with IS tests un-rewritten.
        dataset = Dataset.create("Tweets", StorageFormat.INFERRED)
        dataset.insert({"id": 1, "entities": {"hashtags": [{"tag": "x"}]}})   # no .text
        dataset.insert({"id": 2, "entities": {"hashtags": [{"text": "jobs"}]}})
        dataset.flush_all()
        executor = QueryExecutor(consolidate_field_access=consolidate,
                                 pushdown_through_unnest=consolidate)
        rows = executor.execute(dataset, compile_sqlpp("""
            SELECT t.id AS id FROM Tweets AS t
            WHERE SOME ht IN t.entities.hashtags SATISFIES ht.text IS MISSING
        """).spec).rows
        assert [row["id"] for row in rows] == [1]

    @pytest.mark.parametrize("consolidate", [True, False], ids=["optimized", "un-optimized"])
    def test_is_missing_on_unnested_item_survives_pushdown(self, consolidate):
        dataset = Dataset.create("Sensors", StorageFormat.INFERRED)
        dataset.insert({"id": 1, "readings": [{"temp": 20.0}, {"flag": True}]})
        dataset.flush_all()
        executor = QueryExecutor(consolidate_field_access=consolidate,
                                 pushdown_through_unnest=consolidate)
        rows = executor.execute(dataset, compile_sqlpp("""
            SELECT VALUE count(*) FROM Sensors AS s UNNEST s.readings AS r
            WHERE r.temp IS MISSING
        """).spec).rows
        assert rows == [{"count": 1}]

    def test_quantifier_over_missing_collection_is_false(self):
        dataset = Dataset.create("Tweets", StorageFormat.INFERRED)
        dataset.insert({"id": 1, "entities": {"hashtags": [{"text": "jobs"}]}})
        dataset.insert({"id": 2})  # no entities at all (Twitter Q3 shape)
        dataset.flush_all()
        rows = dataset.query("""
            SELECT VALUE count(*) FROM Tweets AS t
            WHERE SOME ht IN t.entities.hashtags SATISFIES ht.text = 'jobs'
        """).rows
        assert rows == [{"count": 1}]

    def test_exists_on_missing_collection_is_false(self, sparse_dataset):
        rows = sparse_dataset.query(
            "SELECT t.name AS name FROM Sparse AS t WHERE EXISTS t.tags").rows
        assert rows == []

    def test_aggregates_skip_unknowns(self, sparse_dataset):
        rows = sparse_dataset.query("""
            SELECT count(t.score) AS with_score, count(*) AS total,
                   sum(t.score) AS total_score
            FROM Sparse AS t
        """).rows
        assert rows == [{"with_score": 1, "total": 3, "total_score": 10}]

    def test_group_keys_drop_missing_but_keep_null(self, sparse_dataset):
        rows = sparse_dataset.query("""
            SELECT score, count(*) AS c FROM Sparse AS t GROUP BY t.score AS score
        """).rows
        keys = sorted((repr(row["score"]) for row in rows))
        # MISSING group key drops the record (SQL++), NULL is a real group.
        assert len(rows) == 2 and "None" in keys


# ---------------------------------------------------------------------------
# executor integration
# ---------------------------------------------------------------------------

class TestDatasetQuery:
    def test_query_returns_query_result_with_stats(self):
        dataset = Dataset.create("T", StorageFormat.INFERRED, partitions=2)
        dataset.insert_all({"id": i, "v": i % 5} for i in range(50))
        dataset.flush_all()
        result = dataset.query("SELECT VALUE count(*) FROM T AS t")
        assert result.rows == [{"count": 50}]
        assert result.stats.records_scanned == 50

    def test_query_accepts_prebuilt_executor(self):
        dataset = Dataset.create("T", StorageFormat.OPEN)
        dataset.insert({"id": 1, "v": 2})
        dataset.flush_all()
        executor = QueryExecutor(cold_cache=True)
        assert dataset.query("SELECT * FROM T AS t", executor=executor).rows

    def test_query_rejects_executor_plus_options(self):
        from repro.errors import DatasetError

        dataset = Dataset.create("T", StorageFormat.OPEN)
        with pytest.raises(DatasetError):
            dataset.query("SELECT * FROM T AS t", executor=QueryExecutor(),
                          cold_cache=True)

    def test_consolidation_applies_to_text_queries(self):
        # The optimizer's consolidation rewrite (paper §3.4.2) must see the
        # bound plan exactly as it sees builder plans.
        from repro.sqlpp import compile as compile_sqlpp_fn
        from repro.query.optimizer import Optimizer

        spec = compile_sqlpp_fn("""
            SELECT VALUE count(*) FROM Tweets AS t
            WHERE SOME ht IN t.entities.hashtags SATISFIES lowercase(ht.text) = 'jobs'
        """).spec
        plan = Optimizer().plan(spec, uses_vector_format=True)
        assert plan.consolidate
        assert ("entities", "hashtags", "*", "text") in plan.scan_paths
