"""Tests for the cluster simulator and data feeds."""

import pytest

from repro.cluster import ClusterSimulator, DataFeed
from repro.config import ClusterConfig, StorageConfig, StorageFormat
from repro.datasets import twitter
from repro.errors import ClusterError, FeedError
from repro.query import QueryExecutor
from repro import Dataset


def _cluster(nodes=2, partitions=2, compression=None):
    return ClusterSimulator(
        ClusterConfig(node_count=nodes, partitions_per_node=partitions),
        StorageConfig(page_size=4096, buffer_cache_pages=512, compression=compression),
    )


class TestClusterSimulator:
    def test_topology(self):
        cluster = _cluster(nodes=3, partitions=2)
        assert len(cluster.nodes) == 3
        assert cluster.total_partitions() == 6
        assert cluster.metadata_node.is_metadata_node

    def test_create_dataset_spreads_partitions(self):
        cluster = _cluster(nodes=2, partitions=2)
        dataset = cluster.create_dataset("tweets", StorageFormat.INFERRED)
        assert dataset.partition_count == 4
        assert "tweets" in cluster.metadata_node.dataset_catalog

    def test_duplicate_dataset_rejected(self):
        cluster = _cluster()
        cluster.create_dataset("tweets")
        with pytest.raises(ClusterError):
            cluster.create_dataset("tweets")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ClusterError):
            _cluster().dataset("nope")

    def test_ingest_and_query_across_nodes(self):
        cluster = _cluster(nodes=2, partitions=2)
        dataset = cluster.create_dataset("tweets", StorageFormat.INFERRED)
        records = list(twitter.generate(200))
        dataset.insert_all(records)
        dataset.flush_all()
        assert all(size > 0 for size in cluster.per_node_storage_sizes())
        # Explicit width so the assertion holds under REPRO_PARALLELISM=1 too.
        report = cluster.execute("tweets", twitter.QUERIES["Q1"](), parallelism=4)
        assert report.result.rows[0]["count"] == 200
        assert report.parallelism == 4
        assert report.measured_wall_seconds > 0
        # Timings are now *measured* from a real worker-pool run.  A tiny
        # dataset leaves no room for speedup (pool spin-up dominates), so
        # only assert coherence: wall time may exceed the sequential
        # equivalent by scheduling overhead alone (generous slack).
        assert report.measured_wall_seconds <= report.sequential_seconds + 0.25
        assert report.measured_speedup == pytest.approx(
            report.result.stats.measured_speedup)
        assert len(report.result.stats.per_partition) == 4

    def test_parallelism_one_matches_fanout_rows(self):
        cluster = _cluster(nodes=2, partitions=2)
        dataset = cluster.create_dataset("tweets", StorageFormat.INFERRED)
        dataset.insert_all(twitter.generate(200))
        dataset.flush_all()
        spec = twitter.QUERIES["Q3"]()
        sequential = cluster.execute("tweets", spec, parallelism=1)
        parallel = cluster.execute("tweets", spec, parallelism=4)
        assert sequential.result.rows == parallel.result.rows
        assert sequential.parallelism == 1
        assert parallel.parallelism == 4

    def test_repartitioning_query_broadcasts_schemas(self):
        cluster = _cluster(nodes=2, partitions=2)
        dataset = cluster.create_dataset("tweets", StorageFormat.INFERRED)
        dataset.insert_all(twitter.generate(150))
        dataset.flush_all()
        report = cluster.execute("tweets", twitter.QUERIES["Q2"]())
        assert report.schema_broadcast_bytes > 0

    def test_storage_scales_with_nodes(self):
        """Scale-out shape: double the nodes + double the data => ~double storage."""
        sizes = {}
        for nodes in (1, 2):
            cluster = _cluster(nodes=nodes, partitions=1)
            dataset = cluster.create_dataset("tweets", StorageFormat.INFERRED)
            dataset.insert_all(twitter.generate(150 * nodes))
            dataset.flush_all()
            sizes[nodes] = cluster.total_storage_size()
        ratio = sizes[2] / sizes[1]
        assert 1.5 < ratio < 2.5


class TestDataFeed:
    def test_insert_only_feed(self):
        dataset = Dataset.create("feed_tweets", StorageFormat.INFERRED)
        feed = DataFeed(dataset)
        report = feed.run(twitter.generate(120))
        feed.close()
        assert report.inserts == 120
        assert report.updates == 0
        assert report.records_ingested == 120
        assert report.total_seconds > 0
        assert dataset.count() == 120

    def test_update_feed_requires_generator(self):
        dataset = Dataset.create("feed_bad", StorageFormat.INFERRED)
        with pytest.raises(FeedError):
            DataFeed(dataset, update_ratio=0.5)

    def test_update_feed_issues_upserts(self):
        dataset = Dataset.create("feed_upd", StorageFormat.INFERRED)
        feed = DataFeed(dataset, update_ratio=0.5, update_generator=twitter.generate_update)
        report = feed.run(twitter.generate(200))
        feed.close()
        assert report.inserts == 200
        assert 40 <= report.updates <= 160  # ~50% on average
        assert dataset.count() == 200  # updates never add new keys
        stats = dataset.ingest_stats()
        assert stats["upserts"] == report.updates

    def test_feed_cannot_run_after_close(self):
        dataset = Dataset.create("feed_closed", StorageFormat.INFERRED)
        feed = DataFeed(dataset)
        feed.run(twitter.generate(5))
        feed.close()
        with pytest.raises(FeedError):
            feed.run(twitter.generate(5))

    def test_bad_update_ratio_rejected(self):
        dataset = Dataset.create("feed_ratio", StorageFormat.INFERRED)
        with pytest.raises(FeedError):
            DataFeed(dataset, update_ratio=1.5, update_generator=twitter.generate_update)

    def test_log_bytes_accounted(self):
        dataset = Dataset.create("feed_log", StorageFormat.OPEN)
        feed = DataFeed(dataset)
        report = feed.run(twitter.generate(50))
        assert report.log_bytes_written > 0
