"""WAL truncation and tail-dropping under concurrent appenders.

The log is shared by every partition of a node, and background flushes
truncate *their* partition's range from flush-worker threads while the
writers keep appending.  These tests pin the invariants that make that
safe:

* LSNs are unique, contiguous, and handed out exactly once no matter how
  many threads append concurrently;
* ``truncate_partition`` removes exactly the targeted partition's records
  up to the cut and never touches a concurrent appender's other-partition
  records;
* ``drop_after`` (the crash simulation) racing live appenders always
  leaves a well-formed log: LSN-sorted, duplicate-free, CRC-valid, with
  each thread's surviving records still in its append order.
"""

import threading

from repro.storage.wal import LogRecordType, WriteAheadLog

DATASET = "walcc"


def _append_worker(wal, partition, count, out, start_barrier):
    start_barrier.wait()
    for i in range(count):
        record = wal.append(LogRecordType.INSERT, DATASET, partition,
                            key=(partition, i), payload=b"p%d-%d" % (partition, i))
        out.append(record)


def _run_appenders(wal, threads, per_thread, racer=None):
    """Run one appender thread per partition (plus an optional racer)."""
    barrier = threading.Barrier(threads + (1 if racer else 0))
    outputs = [[] for _ in range(threads)]
    workers = [threading.Thread(target=_append_worker,
                                args=(wal, partition, per_thread,
                                      outputs[partition], barrier))
               for partition in range(threads)]
    if racer is not None:
        workers.append(threading.Thread(target=racer, args=(barrier,)))
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    return outputs


class TestConcurrentAppenders:
    def test_lsns_unique_contiguous_and_records_ordered(self):
        wal = WriteAheadLog()
        outputs = _run_appenders(wal, threads=4, per_thread=200)

        all_lsns = sorted(record.lsn for out in outputs for record in out)
        assert all_lsns == list(range(1, 4 * 200 + 1))
        assert wal.last_lsn == 4 * 200
        assert len(wal) == 4 * 200

        # The record list itself is LSN-sorted (assignment and append happen
        # under one lock), every record is CRC-valid, and each partition's
        # replay preserves its appender's program order.
        replayed = list(wal.replay())
        assert [record.lsn for record in replayed] == all_lsns
        assert all(record.crc == record.content_crc() for record in replayed)
        for partition, out in enumerate(outputs):
            keys = [record.key for record in wal.replay(partition=partition)]
            assert keys == [(partition, i) for i in range(200)]

    def test_truncate_partition_racing_appenders(self):
        """A flush truncating partition 0 mid-ingest never harms partition 1."""
        wal = WriteAheadLog()

        def truncator(barrier):
            barrier.wait()
            for _ in range(200):
                wal.truncate_partition(DATASET, 0, wal.last_lsn)

        outputs = _run_appenders(wal, threads=2, per_thread=300, racer=truncator)

        # Retire the rest of partition 0; partition 1 must be intact.
        wal.truncate_partition(DATASET, 0, wal.last_lsn)
        assert list(wal.replay(partition=0)) == []
        survivors = list(wal.replay(partition=1))
        assert [record.key for record in survivors] == [(1, i) for i in range(300)]
        assert all(record.crc == record.content_crc() for record in survivors)
        lsns = [record.lsn for record in survivors]
        assert lsns == sorted(set(lsns))
        del outputs

    def test_truncate_partition_drops_exact_range_and_markers(self):
        """Deterministic baseline: the cut removes exactly lsn <= up_to for
        the target partition, plus its replay-inert FLUSH markers."""
        wal = WriteAheadLog()
        for i in range(10):
            wal.append(LogRecordType.INSERT, DATASET, i % 2, key=i, payload=b"x")
        wal.append(LogRecordType.FLUSH_START, DATASET, 0)
        wal.append(LogRecordType.FLUSH_END, DATASET, 0)
        mid = 6  # records 1..6 → keys 0..5; partition-0 keys 0, 2, 4

        wal.truncate_partition(DATASET, 0, mid)

        assert [r.key for r in wal.replay(partition=0)] == [6, 8]
        assert [r.key for r in wal.replay(partition=1)] == [1, 3, 5, 7, 9]
        # Markers are dropped eagerly even though their LSNs exceed the cut.
        assert all(r.record_type is LogRecordType.INSERT for r in wal.replay())

    def test_drop_after_racing_appenders_leaves_wellformed_log(self):
        wal = WriteAheadLog()

        def chopper(barrier):
            barrier.wait()
            for _ in range(50):
                wal.drop_after(max(0, wal.last_lsn - 5))

        outputs = _run_appenders(wal, threads=3, per_thread=150, racer=chopper)

        survivors = list(wal.replay())
        lsns = [record.lsn for record in survivors]
        assert lsns == sorted(set(lsns)), "duplicate or out-of-order LSNs"
        assert all(record.crc == record.content_crc() for record in survivors)
        assert wal.last_lsn >= (lsns[-1] if lsns else 0)
        # Each thread's surviving records are a subsequence of what it
        # appended: drop_after removes tails, never reorders.
        for partition, out in enumerate(outputs):
            appended = [record.key for record in out]
            survived = [record.key for record in survivors
                        if record.partition == partition]
            iterator = iter(appended)
            assert all(key in iterator for key in survived), (
                "surviving records reordered relative to append order")

    def test_drop_after_is_exact_when_quiescent(self):
        wal = WriteAheadLog()
        for i in range(20):
            wal.append(LogRecordType.INSERT, DATASET, 0, key=i, payload=b"x")
        wal.drop_after(12)
        assert [record.key for record in wal.replay()] == list(range(12))
        assert wal.last_lsn == 20  # the LSN clock never rewinds
