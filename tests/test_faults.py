"""Fault-injection framework + storage/maintenance hardening.

The contract pinned down here:

* the ``REPRO_FAULTS`` spec grammar and the code API configure the same
  deterministic, seedable rules, and every injection point is discoverable;
* page and WAL checksums turn injected corruption into typed
  ``CorruptPageError`` — never silently wrong bytes;
* transient background failures are retried with backoff inside the
  scheduler's budget, the failure latch is explicit (nothing clears it but
  ``clear_failure``), and ``Dataset.resume_maintenance`` requeues the work
  a latched failure orphaned;
* a component that fails its checksum is quarantined: queries raise
  ``QuarantinedComponentError`` instead of returning partial rows, and the
  ``component_quarantined`` event + metrics flow through ``repro.obs``;
* queries get a cooperative deadline (``REPRO_QUERY_DEADLINE``).
"""

import threading

import pytest

from repro import Dataset, StorageFormat
from repro.config import env_str
from repro.errors import (
    CorruptPageError,
    FaultSpecError,
    PermanentIOError,
    QuarantinedComponentError,
    QueryDeadlineError,
    QueryError,
    SchedulerError,
    TransientIOError,
)
from repro.faults import (
    FAULT_POINTS,
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultRule,
    fault_points,
    get_injector,
    parse_spec,
)
from repro.faults.points import is_registered
from repro.lsm import LSMBTree, LSMIOScheduler, NoMergePolicy
from repro.obs import get_registry
from repro.query import QueryExecutor
from repro.query.executor import DEADLINE_ENV_VAR
from repro.storage import BufferCache, InMemoryFileManager, SimulatedStorageDevice
from repro.storage.wal import LogRecordType, WriteAheadLog

PAGE_SIZE = 2048


@pytest.fixture(autouse=True)
def _isolated_injector():
    """Each test starts from an empty global injector; afterwards the
    ``REPRO_FAULTS`` env spec (the CI faulted leg) is restored."""
    injector = get_injector()
    injector.clear()
    yield injector
    injector.clear()
    spec = env_str(FAULTS_ENV_VAR)
    if spec:
        injector.load_spec(spec)


def _cache(capacity=512):
    device = SimulatedStorageDevice()
    manager = InMemoryFileManager(device, PAGE_SIZE)
    return device, manager, BufferCache(manager, capacity)


def _index(cache, **overrides):
    defaults = dict(name="ds", partition=0, buffer_cache=cache,
                    memory_budget=1 << 20, merge_policy=NoMergePolicy())
    defaults.update(overrides)
    return LSMBTree(**defaults)


def _counter_value(name, **labels):
    return get_registry().counter(name, **labels).value


# ---------------------------------------------------------------------------
# spec grammar + rule validation
# ---------------------------------------------------------------------------

class TestSpecGrammar:
    def test_parse_multi_rule_spec(self):
        parsed = parse_spec("device.read:p=0.25:seed=7;"
                            "wal.append:nth=3:error=corrupt:times=2")
        assert parsed == [
            ("device.read", {"probability": 0.25, "seed": 7}),
            ("wal.append", {"nth": 3, "error": "corrupt", "times": 2}),
        ]

    def test_empty_chunks_skipped(self):
        assert parse_spec(" ; ;") == []

    @pytest.mark.parametrize("spec", [
        "device.read:p",               # no '='
        "device.read:p=",              # empty value
        "device.read:p=abc",           # non-numeric
        "device.read:nth=x",
        "device.read:p=0.1:bogus=1",   # unknown key
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            parse_spec(spec)

    def test_load_spec_applies_rules(self):
        injector = FaultInjector()
        rules = injector.load_spec("device.read:nth=1;device.write:p=0.5:seed=3")
        assert len(rules) == 2
        assert injector.active
        described = injector.rules()
        assert any("device.read" in rule for rule in described)
        assert any("seed=3" in rule for rule in described)

    @pytest.mark.parametrize("kwargs", [
        dict(point="no.such.point", nth=1),
        dict(point="device.read"),                      # no trigger
        dict(point="device.read", nth=1, probability=0.5),  # both triggers
        dict(point="device.read", probability=1.5),
        dict(point="device.read", nth=0),
        dict(point="device.read", nth=1, error="weird"),
        dict(point="device.read", nth=1, times=0),
    ])
    def test_invalid_rules_rejected(self, kwargs):
        with pytest.raises(FaultSpecError):
            FaultRule(**kwargs)


# ---------------------------------------------------------------------------
# determinism + discoverability
# ---------------------------------------------------------------------------

class TestDeterminism:
    def _schedule(self, seed, hits=200):
        injector = FaultInjector()
        injector.add_rule("device.read", probability=0.3, seed=seed)
        fired = []
        for ordinal in range(hits):
            try:
                injector.fire("device.read")
            except TransientIOError:
                fired.append(ordinal)
        return fired

    def test_same_seed_same_fault_schedule(self):
        first = self._schedule(seed=42)
        second = self._schedule(seed=42)
        assert first == second
        assert first  # 200 hits at p=0.3 must fire at least once

    def test_different_seeds_diverge(self):
        assert self._schedule(seed=1) != self._schedule(seed=2)

    def test_default_seed_is_deterministic(self):
        injector = FaultInjector()
        rule = injector.add_rule("device.read", probability=0.5)
        again = FaultInjector().add_rule("device.read", probability=0.5)
        assert rule.seed == again.seed

    def test_nth_rule_fires_on_every_nth_hit(self):
        injector = FaultInjector()
        injector.add_rule("wal.truncate", nth=3)
        outcomes = []
        for _ in range(9):
            try:
                injector.fire("wal.truncate")
                outcomes.append(False)
            except TransientIOError:
                outcomes.append(True)
        assert outcomes == [False, False, True] * 3

    def test_times_caps_total_firings(self):
        injector = FaultInjector()
        injector.add_rule("device.write", nth=1, times=2)
        raised = 0
        for _ in range(10):
            try:
                injector.fire("device.write")
            except TransientIOError:
                raised += 1
        assert raised == 2

    def test_registry_is_discoverable(self):
        names = {point.name for point in fault_points()}
        assert names == {
            "device.read", "device.write", "file.read_page", "file.write_page",
            "buffercache.miss", "wal.append", "wal.truncate",
            "scheduler.flush", "scheduler.merge",
            "cache.lookup", "cache.store",
        }
        assert all(point.description for point in FAULT_POINTS)
        assert is_registered("device.read")
        assert not is_registered("device.teleport")

    def test_hit_counts_track_consultations(self):
        injector = FaultInjector()
        injector.add_rule("device.read", probability=0.0)
        for _ in range(5):
            injector.fire("device.read")
        assert injector.hit_counts() == {"device.read": 5}

    def test_error_classes_map_to_types(self):
        for error, exc_type in [("transient", TransientIOError),
                                ("permanent", PermanentIOError),
                                ("corrupt", CorruptPageError)]:
            injector = FaultInjector()
            injector.add_rule("device.read", nth=1, error=error)
            with pytest.raises(exc_type):
                injector.fire("device.read")

    def test_faults_injected_metric(self):
        before = _counter_value("faults_injected_total", point="device.read")
        injector = get_injector()
        injector.add_rule("device.read", nth=1, times=3)
        raised = 0
        for _ in range(5):
            try:
                injector.fire("device.read")
            except TransientIOError:
                raised += 1
        assert raised == 3
        after = _counter_value("faults_injected_total", point="device.read")
        assert after == before + 3


# ---------------------------------------------------------------------------
# checksums: pages and WAL records
# ---------------------------------------------------------------------------

class TestChecksums:
    def test_page_corruption_caught_by_crc(self):
        _, manager, _ = _cache()
        manager.create_file("f")
        manager.write_page("f", 0, b"a" * PAGE_SIZE)
        assert manager.read_page("f", 0) == b"a" * PAGE_SIZE
        before = _counter_value("checksum_failures_total", kind="page")
        get_injector().add_rule("file.read_page", nth=1, error="corrupt", times=1)
        with pytest.raises(CorruptPageError):
            manager.read_page("f", 0)
        assert _counter_value("checksum_failures_total", kind="page") == before + 1
        # The stored page is intact; with the rule exhausted reads succeed.
        assert manager.read_page("f", 0) == b"a" * PAGE_SIZE

    def test_injected_write_failure_charges_nothing(self):
        device, manager, _ = _cache()
        manager.create_file("f")
        written_before = device.stats.bytes_written
        get_injector().add_rule("device.write", nth=1, times=1)
        with pytest.raises(TransientIOError):
            manager.write_page("f", 0, b"b" * PAGE_SIZE)
        assert device.stats.bytes_written == written_before

    def test_wal_records_carry_content_crc(self):
        wal = WriteAheadLog()
        record = wal.append(LogRecordType.INSERT, "ds", 0, key=1, payload=b"row")
        assert record.crc == record.content_crc()

    def test_torn_tail_detection_truncates_at_first_bad_record(self):
        wal = WriteAheadLog()
        for key in range(6):
            wal.append(LogRecordType.INSERT, "ds", 0, key=key, payload=b"p%d" % key)
        # Tear record 3 (a crash mid-write): everything from it on is lost.
        wal._records[3].payload = b"garbage"
        before = _counter_value("checksum_failures_total", kind="wal")
        assert wal.drop_torn_tail() == 3
        assert _counter_value("checksum_failures_total", kind="wal") == before + 3
        surviving = [record.key for record in wal.replay()]
        assert surviving == [0, 1, 2]
        assert wal.drop_torn_tail() == 0  # idempotent on an intact log

    def test_injected_wal_corruption_is_a_torn_record(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, key=0, payload=b"ok")
        get_injector().add_rule("wal.append", nth=1, error="corrupt", times=1)
        wal.append(LogRecordType.INSERT, "ds", 0, key=1, payload=b"will-tear")
        wal.append(LogRecordType.INSERT, "ds", 0, key=2, payload=b"after")
        assert wal.drop_torn_tail() == 2
        assert [record.key for record in wal.replay()] == [0]

    def test_failed_append_leaves_no_trace(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.INSERT, "ds", 0, key=0, payload=b"ok")
        get_injector().add_rule("wal.append", nth=1, times=1)
        with pytest.raises(TransientIOError):
            wal.append(LogRecordType.INSERT, "ds", 0, key=1, payload=b"lost")
        assert len(wal) == 1
        assert wal.last_lsn == 1
        follow_up = wal.append(LogRecordType.INSERT, "ds", 0, key=2, payload=b"ok2")
        assert follow_up.lsn == 2  # no LSN hole


# ---------------------------------------------------------------------------
# scheduler: retry/backoff + the explicit failure latch
# ---------------------------------------------------------------------------

class TestSchedulerResilience:
    def test_transient_failures_retried_within_budget(self):
        before = _counter_value("maintenance_retries_total", kind="flush")
        get_injector().add_rule("scheduler.flush", nth=1, times=2)
        scheduler = LSMIOScheduler(retry_budget=4, backoff_base=0.0001)
        ran = []
        scheduler.submit_flush(lambda: ran.append(1))
        scheduler.close()  # drains; no failure may surface
        assert ran == [1]
        assert scheduler.stats.flush_retries == 2
        assert scheduler.stats.flushes_completed == 1
        assert _counter_value("maintenance_retries_total", kind="flush") == before + 2

    def test_budget_exhaustion_latches_failure(self):
        get_injector().add_rule("scheduler.flush", nth=1)  # always fire
        scheduler = LSMIOScheduler(retry_budget=2, backoff_base=0.0001)
        scheduler.submit_flush(lambda: None)
        with pytest.raises(SchedulerError):
            scheduler.drain()
        # The latch is sticky: nothing clears it implicitly.
        with pytest.raises(SchedulerError):
            scheduler.raise_if_failed()
        failure = scheduler.clear_failure()
        assert isinstance(failure, TransientIOError)
        scheduler.raise_if_failed()  # clean now
        # After clearing, the scheduler accepts and completes new work.
        get_injector().clear()
        done = []
        scheduler.submit_flush(lambda: done.append(1))
        scheduler.close()
        assert done == [1]

    def test_permanent_failures_are_not_retried(self):
        get_injector().add_rule("scheduler.flush", nth=1, error="permanent")
        scheduler = LSMIOScheduler(retry_budget=5, backoff_base=0.0001)
        scheduler.submit_flush(lambda: None)
        with pytest.raises(SchedulerError) as excinfo:
            scheduler.drain()
        assert isinstance(excinfo.value.__cause__, PermanentIOError)
        assert scheduler.stats.flush_retries == 0
        scheduler.clear_failure()
        scheduler.close()

    def test_zero_budget_surfaces_first_transient(self):
        get_injector().add_rule("scheduler.flush", nth=1, times=1)
        scheduler = LSMIOScheduler(retry_budget=0)
        scheduler.submit_flush(lambda: None)
        with pytest.raises(SchedulerError):
            scheduler.drain()
        scheduler.clear_failure()
        scheduler.close()

    def test_concurrent_raise_if_failed_is_safe(self):
        """Regression: raise_if_failed reads the latch under the lock, so
        concurrent failers/readers never race on a half-written latch."""
        scheduler = LSMIOScheduler(max_flush_workers=2, retry_budget=0)
        get_injector().add_rule("scheduler.flush", nth=2)  # some tasks fail
        for _ in range(8):
            scheduler.submit_flush(lambda: None)
        errors = []

        def poll():
            for _ in range(100):
                try:
                    scheduler.raise_if_failed()
                except SchedulerError:
                    pass
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=poll) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with pytest.raises(SchedulerError):
            scheduler.close()

    def test_retry_budget_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BUDGET", "7")
        scheduler = LSMIOScheduler()
        assert scheduler.retry_budget == 7
        scheduler.close()
        monkeypatch.setenv("REPRO_RETRY_BUDGET", "junk")
        with pytest.raises(SchedulerError):
            LSMIOScheduler()
        monkeypatch.delenv("REPRO_RETRY_BUDGET")
        scheduler = LSMIOScheduler(retry_budget=0)
        assert scheduler.retry_budget == 0
        scheduler.close()


# ---------------------------------------------------------------------------
# end-to-end: ingest + flush survive transient device faults
# ---------------------------------------------------------------------------

class TestFlushRetrySafety:
    def test_background_flush_retries_through_device_faults(self):
        get_injector().add_rule("scheduler.flush", probability=0.5, seed=11)
        _, _, cache = _cache()
        scheduler = LSMIOScheduler(retry_budget=10, backoff_base=0.0001)
        index = _index(cache, scheduler=scheduler, memory_budget=4096,
                       max_sealed_memtables=4)
        for key in range(200):
            index.insert(key, {"id": key}, (b"%06d" % key) * 16)
        index.drain_maintenance()
        scheduler.close()
        assert index.exact_count() == 200
        assert sorted(result.key for result in index.scan()) == list(range(200))

    def test_flush_rollback_preserves_compactor_schema(self):
        """A transient flush failure must restore the tuple compactor's
        schema snapshot, so the retry infers from the same starting state."""
        dataset = Dataset.create("rollback_schema", StorageFormat.INFERRED)
        dataset.insert({"id": 1, "name": "a"})
        get_injector().add_rule("scheduler.flush", nth=1, times=1)
        # Synchronous flush path: the fault fires inside the scheduler only
        # for background mode, so drive the index flush directly instead.
        partition = dataset.partitions[0]
        flush_count_before = partition.compactor.flush_count
        get_injector().clear()
        get_injector().add_rule("device.write", nth=1, times=1)
        with pytest.raises(TransientIOError):
            partition.index.flush()
        assert partition.compactor.flush_count == flush_count_before
        assert partition.index.component_count() == 0
        # Rule exhausted: the retried flush succeeds and compacts normally.
        partition.index.flush()
        assert partition.compactor.flush_count == flush_count_before + 1
        assert partition.index.component_count() == 1
        assert dataset.get(1) == {"id": 1, "name": "a"}
        dataset.close()


# ---------------------------------------------------------------------------
# quarantine: corrupt components produce typed errors, never wrong rows
# ---------------------------------------------------------------------------

class TestQuarantine:
    def _flushed_index(self, rows=30):
        _, _, cache = _cache(capacity=4)  # tiny cache: reads go to disk
        index = _index(cache)
        for key in range(rows):
            index.insert(key, {"id": key}, (b"%06d" % key) * 8)
        index.flush()
        return index, cache

    def test_corrupt_component_quarantined_on_search(self):
        index, cache = self._flushed_index()
        cache.clear()
        events_before = _counter_value("events_total", event="component_quarantined")
        get_injector().add_rule("file.read_page", nth=1, error="corrupt", times=1)
        with pytest.raises(QuarantinedComponentError) as excinfo:
            index.search(7)
        assert excinfo.value.component_name
        assert isinstance(excinfo.value.__cause__, CorruptPageError)
        assert _counter_value(
            "events_total", event="component_quarantined") == events_before + 1
        # Fail-fast forever after, even with injection over — and the event
        # is emitted only once per component.
        with pytest.raises(QuarantinedComponentError):
            index.search(3)
        with pytest.raises(QuarantinedComponentError):
            list(index.scan())
        assert _counter_value(
            "events_total", event="component_quarantined") == events_before + 1
        assert len(index.quarantined_components()) == 1

    def test_scan_hits_quarantine_too(self):
        index, cache = self._flushed_index()
        cache.clear()
        get_injector().add_rule("file.read_page", nth=1, error="corrupt", times=1)
        with pytest.raises(QuarantinedComponentError):
            list(index.scan())

    def test_memtable_reads_survive_quarantine(self):
        index, cache = self._flushed_index()
        cache.clear()
        get_injector().add_rule("file.read_page", nth=1, error="corrupt", times=1)
        with pytest.raises(QuarantinedComponentError):
            index.search(0)
        # New, unflushed data never touches the quarantined component.
        index.insert(1000, {"id": 1000}, b"fresh" * 8)
        assert index.search(1000).record == {"id": 1000}


# ---------------------------------------------------------------------------
# query deadline
# ---------------------------------------------------------------------------

class TestQueryDeadline:
    def _dataset(self, partitions=2):
        dataset = Dataset.create("deadline_ds", StorageFormat.OPEN,
                                 partitions=partitions)
        dataset.insert_all({"id": key, "val": key % 7} for key in range(300))
        return dataset

    def test_zero_deadline_expires_immediately(self):
        dataset = self._dataset()
        executor = QueryExecutor(deadline=0)
        with pytest.raises(QueryDeadlineError):
            dataset.query("SELECT d.val AS val FROM deadline_ds AS d",
                          executor=executor)
        dataset.close()

    def test_generous_deadline_passes(self):
        dataset = self._dataset()
        executor = QueryExecutor(deadline=60.0)
        rows = dataset.query(
            "SELECT d.id AS id FROM deadline_ds AS d WHERE d.val = 3",
            executor=executor)
        assert sorted(row["id"] for row in rows) == [
            key for key in range(300) if key % 7 == 3]
        dataset.close()

    def test_deadline_cancels_parallel_workers(self):
        dataset = self._dataset(partitions=4)
        executor = QueryExecutor(deadline=0, parallelism=4)
        with pytest.raises(QueryDeadlineError):
            dataset.query("SELECT d.id AS id FROM deadline_ds AS d",
                          executor=executor)
        dataset.close()

    def test_env_knob(self, monkeypatch):
        dataset = self._dataset(partitions=1)
        monkeypatch.setenv(DEADLINE_ENV_VAR, "0")
        with pytest.raises(QueryDeadlineError):
            dataset.query("SELECT d.id AS id FROM deadline_ds AS d")
        # An explicit executor argument wins over the environment.
        rows = dataset.query("SELECT d.id AS id FROM deadline_ds AS d",
                             executor=QueryExecutor(deadline=60.0))
        assert len(rows) == 300
        monkeypatch.setenv(DEADLINE_ENV_VAR, "junk")
        with pytest.raises(QueryError):
            dataset.query("SELECT d.id AS id FROM deadline_ds AS d")
        monkeypatch.setenv(DEADLINE_ENV_VAR, "-1")
        with pytest.raises(QueryError):
            dataset.query("SELECT d.id AS id FROM deadline_ds AS d")
        dataset.close()


# ---------------------------------------------------------------------------
# recovery integration: torn WAL tail + resume after latched failure
# ---------------------------------------------------------------------------

class TestRecoveryIntegration:
    def test_resume_maintenance_clears_latch_and_requeues(self):
        _, _, cache = _cache()
        scheduler = LSMIOScheduler(retry_budget=0, backoff_base=0.0001)
        index = _index(cache, scheduler=scheduler, memory_budget=4096,
                       max_sealed_memtables=8)
        get_injector().add_rule("scheduler.flush", nth=1, times=1)
        for key in range(120):
            index.insert(key, {"id": key}, (b"%06d" % key) * 16)
        with pytest.raises(SchedulerError):
            index.drain_maintenance()
        assert scheduler.clear_failure() is not None
        resubmitted = index.resume_maintenance()
        assert resubmitted >= 1
        index.drain_maintenance()
        assert sorted(result.key for result in index.scan()) == list(range(120))
        scheduler.close()
