"""Observability layer: metrics registry, tracing, EXPLAIN ANALYZE, events.

Covers the guarantees the layer advertises (README "Observability"):

* the metrics registry is thread-safe, label-aware, and type-strict, and
  ``metrics_delta`` reports per-run activity without resets;
* tracing is off by default with a shared no-op span (identity-checkable),
  results are identical with tracing on or off, and span parent/child links
  survive the query worker pool and the background-maintenance scheduler
  threads — including under concurrent queries + merges (hypothesis);
* ``REPRO_TRACE=<path>`` exports JSONL that the bundled validator accepts;
* ``explain(analyze=True)`` renders per-operator actuals for every
  workload's SQL++ query suite, and a >10x estimated-vs-actual cardinality
  divergence emits a structured warning.
"""

import json
import logging
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Dataset, LSMConfig, StorageFormat, metrics_delta
from repro.cluster import DataFeed
from repro.datasets import sensors, twitter, wos
from repro.obs import (
    CARDINALITY_MISESTIMATE,
    MetricsRegistry,
    NULL_SPAN,
    StatsDictMixin,
    emit_event,
    get_registry,
    get_tracer,
    validate_trace_lines,
)
from repro.query import ExecutionStats, OperatorStats, PartitionStats, QueryExecutor

#: Small memtables so ingest produces flushes and merges mid-run.
SMALL_LSM = dict(memory_component_budget=16 * 1024,
                 max_tolerable_component_count=3)


@pytest.fixture(autouse=True)
def _clean_tracer():
    """Every test starts with an empty tracer and leaves it env-driven."""
    tracer = get_tracer()
    tracer.refresh_from_env()
    tracer.clear()
    yield tracer
    tracer.refresh_from_env()
    tracer.clear()


def _dataset(name, records=(), partitions=2, background=False, **create_kwargs):
    lsm = LSMConfig(background_maintenance=background, **SMALL_LSM) if background else None
    if lsm is not None:
        create_kwargs.setdefault("lsm", lsm)
    dataset = Dataset.create(name, StorageFormat.INFERRED, partitions=partitions,
                             **create_kwargs)
    for record in records:
        dataset.insert(record)
    if records:
        dataset.flush_all()
    return dataset


def _employee_records(count=120):
    return [{"id": i, "name": f"n{i}", "age": 20 + (i % 40)} for i in range(count)]


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        registry.gauge("g").set(7)
        registry.gauge("g").dec(3)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 4
        assert snap["histograms"]["h"] == {
            "count": 2, "sum": 4.0, "mean": 2.0, "min": 1.0, "max": 3.0}
        json.dumps(snap)  # snapshot must be JSON-serializable as-is

    def test_labels_create_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("bytes", io_class="data").inc(10)
        registry.counter("bytes", io_class="log").inc(1)
        assert registry.counter("bytes", io_class="data") is registry.counter(
            "bytes", io_class="data")
        snap = registry.snapshot()["counters"]
        assert snap["bytes{io_class=data}"] == 10
        assert snap["bytes{io_class=log}"] == 1

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        registry.counter("labeled", a=1)
        with pytest.raises(TypeError):
            registry.histogram("labeled", a=2)

    def test_concurrent_increments_are_lossless(self):
        registry = MetricsRegistry()
        threads = [threading.Thread(
            target=lambda worker=i % 2: [registry.counter("hits", worker=worker).inc()
                                         for _ in range(500)])
            for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counters = registry.snapshot()["counters"]
        assert counters["hits{worker=0}"] + counters["hits{worker=1}"] == 4000

    def test_metrics_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(2.0)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.gauge("g").set(9)
        delta = metrics_delta(registry.snapshot(), before)
        assert delta["counters"]["c"] == 3
        assert delta["gauges"]["g"] == 9  # gauges keep the current value
        assert delta["histograms"]["h"]["count"] == 0
        assert delta["histograms"]["h"]["min"] == 0.0  # zeroed: no new samples


# ---------------------------------------------------------------------------
# stats to_dict protocol
# ---------------------------------------------------------------------------

class TestStatsDict:
    def test_execution_stats_to_dict_is_json_ready(self):
        stats = ExecutionStats(wall_seconds=0.5, estimated_rows=10.0,
                               actual_matched_rows=3)
        stats.per_partition.append(PartitionStats(
            partition_id=0, operators=[OperatorStats("FullScan", rows_out=4)]))
        data = stats.to_dict()
        json.dumps(data)
        assert data["per_partition"][0]["operators"][0]["operator"] == "FullScan"
        assert data["cardinality_error"] == pytest.approx(11.0 / 4.0)
        assert "cache_hit_ratio" in data  # derived properties exported

    def test_engine_reports_share_the_protocol(self):
        dataset = _dataset("ObsDictDs", _employee_records(40))
        try:
            feed_report_cls = DataFeed(dataset).run([]).__class__
            assert issubclass(feed_report_cls, StatsDictMixin)
            snapshot = dataset.environments[0].buffer_cache.stats_snapshot()
            json.dumps(snapshot.to_dict())
            json.dumps(dataset.partitions[0].index.stats.to_dict())
        finally:
            dataset.close()


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------

class TestTracer:
    def test_disabled_by_default_returns_null_span(self, _clean_tracer, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        tracer = _clean_tracer
        tracer.refresh_from_env()
        assert not tracer.enabled
        assert tracer.span("anything") is NULL_SPAN  # no allocation per call
        def fn():
            return 1
        assert tracer.wrap_context(fn) is fn

    def test_span_nesting_assigns_parent_and_trace(self, _clean_tracer):
        tracer = _clean_tracer
        tracer.enable()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = {span.name: span for span in tracer.spans()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["outer"].end >= spans["inner"].end

    def test_exception_is_recorded_on_span(self, _clean_tracer):
        tracer = _clean_tracer
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("failed")
        (span,) = tracer.spans()
        assert "RuntimeError" in span.attributes["error"]

    def test_env_var_file_export_produces_valid_jsonl(self, _clean_tracer,
                                                      monkeypatch, tmp_path):
        path = tmp_path / "trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        tracer = _clean_tracer
        tracer.refresh_from_env()
        assert tracer.enabled
        dataset = _dataset("ObsExportDs", _employee_records(60))
        try:
            dataset.query("SELECT e.name AS name FROM ObsExportDs AS e WHERE e.age < 30")
            emit_event("test_event", detail=1)
        finally:
            dataset.close()
        tracer.refresh_from_env()  # close the export handle
        lines = path.read_text().splitlines()
        errors, counts = validate_trace_lines(lines)
        assert errors == []
        assert counts["spans"] > 0
        assert counts["events"] >= 1

    def test_truthy_env_flag_keeps_spans_in_memory_only(self, _clean_tracer,
                                                        monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.chdir(tmp_path)
        tracer = _clean_tracer
        tracer.refresh_from_env()
        with tracer.span("only_memory"):
            pass
        assert [span.name for span in tracer.spans()] == ["only_memory"]
        assert list(tmp_path.iterdir()) == []  # no file named "1" appeared


class TestTraceValidator:
    def test_rejects_orphans_duplicates_and_bad_fields(self):
        good = {"type": "span", "trace_id": "t1", "span_id": "s1",
                "parent_id": None, "name": "root", "start": 1.0, "end": 2.0,
                "thread": "main", "attributes": {}}
        orphan = dict(good, span_id="s2", parent_id="s99")
        duplicate = dict(good)
        backwards = dict(good, span_id="s3", parent_id=None, start=5.0, end=1.0)
        missing = {"type": "span", "span_id": "s4"}
        lines = [json.dumps(record) for record in
                 (good, orphan, duplicate, backwards, missing)] + ["not json"]
        errors, counts = validate_trace_lines(lines)
        assert counts["spans"] == 5
        assert any("orphan" in error for error in errors)
        assert any("duplicate" in error for error in errors)
        assert any("ends before" in error for error in errors)
        assert any("missing fields" in error for error in errors)
        assert any("not valid JSON" in error for error in errors)

    def test_accepts_a_real_exported_tree(self, _clean_tracer):
        tracer = _clean_tracer
        tracer.enable()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        lines = [json.dumps(span.to_dict()) for span in tracer.spans()]
        errors, counts = validate_trace_lines(lines)
        assert errors == []
        assert counts == {"spans": 2, "events": 0, "traces": 1}


# ---------------------------------------------------------------------------
# engine integration: span trees across pools and scheduler threads
# ---------------------------------------------------------------------------

def _assert_sound_tree(spans):
    """Every parented span's parent exists, in the same trace, and every
    recorded span tree keeps parent intervals enclosing synthesized child
    start times (operators are recorded post-hoc, so only starts nest)."""
    by_id = {span.span_id: span for span in spans}
    assert len(by_id) == len(spans), "duplicate span ids"
    for span in spans:
        if span.parent_id is None:
            continue
        assert span.parent_id in by_id, f"orphan span {span.name}"
        parent = by_id[span.parent_id]
        assert parent.trace_id == span.trace_id
        assert parent.start <= span.start + 1e-6


class TestEngineTracing:
    def test_query_span_tree_covers_every_layer(self, _clean_tracer):
        tracer = _clean_tracer
        tracer.enable()
        dataset = _dataset("ObsTreeDs", _employee_records(80), partitions=2)
        try:
            dataset.query("SELECT e.name AS name FROM ObsTreeDs AS e WHERE e.age < 30")
            spans = tracer.spans(dataset._last_trace_id)
            names = {span.name for span in spans}
            assert {"query", "sqlpp.parse", "sqlpp.bind", "query.execute",
                    "query.optimize", "query.partition",
                    "query.coordinator"} <= names
            assert any(name.startswith("operator.") for name in names)
            _assert_sound_tree(spans)
            assert len([span for span in spans if span.name == "query.partition"]) == 2
            # last_trace() exposes the same tree as dicts
            exported = dataset.last_trace()
            assert {entry["span_id"] for entry in exported} == {
                span.span_id for span in spans}
        finally:
            dataset.close()

    def test_background_maintenance_spans_attach_under_ingest(self, _clean_tracer):
        tracer = _clean_tracer
        tracer.enable()
        dataset = _dataset("ObsBgDs", partitions=2, background=True)
        try:
            feed = DataFeed(dataset, per_partition_ingest=True)
            feed.run(twitter.generate(120))
            feed.close()
        finally:
            dataset.close()
        spans = tracer.spans()
        _assert_sound_tree(spans)
        flushes = [span for span in spans if span.name == "lsm.flush"]
        assert flushes, "small memtables must have flushed during the feed"
        feed_span = next(span for span in spans if span.name == "feed.run")
        by_id = {span.span_id: span for span in spans}

        def root_of(span):
            while span.parent_id is not None:
                span = by_id[span.parent_id]
            return span

        # Flushes whose maintenance was submitted while the feed span was
        # open attach under it (context propagation through the scheduler);
        # flushes forced later by feed.close()'s flush barrier start fresh
        # traces, so assert the during-feed population, not all of them.
        in_feed = [flush for flush in flushes
                   if root_of(flush).trace_id == feed_span.trace_id]
        assert in_feed, "no flush span attached under the ingest span"
        for flush in in_feed:
            assert flush.trace_id == feed_span.trace_id

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(partitions=st.integers(min_value=2, max_value=3),
           query_threads=st.integers(min_value=2, max_value=3))
    def test_span_integrity_under_concurrent_queries_and_merges(
            self, partitions, query_threads):
        """Stress: parallel queries race background flushes/merges; the span
        forest must stay sound (no orphans, no cross-trace parents)."""
        tracer = get_tracer()
        tracer.refresh_from_env()
        tracer.clear()
        tracer.enable()
        dataset = _dataset(f"ObsStress{partitions}", partitions=partitions,
                           background=True)
        errors = []
        try:
            feed = DataFeed(dataset, per_partition_ingest=True)
            feed.run(twitter.generate(80))

            def run_queries():
                try:
                    for _ in range(3):
                        rows = dataset.query(
                            "SELECT VALUE count(*) FROM Tweets AS t")
                        assert len(rows.rows) == 1
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=run_queries)
                       for _ in range(query_threads)]
            for thread in threads:
                thread.start()
            feed.run(twitter.generate(80, start_id=80))
            for thread in threads:
                thread.join()
            feed.close()
        finally:
            dataset.close()
            spans = tracer.spans()
            tracer.disable()
            tracer.clear()
        assert not errors, errors
        _assert_sound_tree(spans)
        roots = [span for span in spans
                 if span.parent_id is None and span.name == "query"]
        assert len(roots) == query_threads * 3
        assert len({span.trace_id for span in roots}) == len(roots)


# ---------------------------------------------------------------------------
# on/off parity
# ---------------------------------------------------------------------------

class TestParity:
    QUERY = ("SELECT e.age AS age, count(*) AS c FROM Parity AS e "
             "GROUP BY e.age AS age ORDER BY c DESC, age LIMIT 5")

    def test_results_identical_and_disabled_path_stays_bare(self, _clean_tracer,
                                                            monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        tracer = _clean_tracer
        tracer.refresh_from_env()
        dataset = _dataset("ObsParityDs", _employee_records(200), partitions=2)
        try:
            off = dataset.query(self.QUERY)
            assert off.stats.per_partition[0].operators == []  # no probes built
            assert dataset.last_trace() == []
            tracer.enable()
            on = dataset.query(self.QUERY)
            assert on.rows == off.rows
            assert on.stats.per_partition[0].operators  # probes engaged
            tracer.disable()
            off_again = dataset.query(self.QUERY)
            assert off_again.rows == off.rows
        finally:
            dataset.close()

    def test_disabled_overhead_is_negligible(self, _clean_tracer, monkeypatch):
        """Disabled runs must not be slower than instrumented runs (with
        scheduling slack): the fast path really skips the probes."""
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        tracer = _clean_tracer
        tracer.refresh_from_env()
        dataset = _dataset("ObsOverheadDs", _employee_records(400), partitions=1)

        def median_seconds(executor, rounds=7):
            times = []
            spec_result = None
            for _ in range(rounds):
                started = time.perf_counter()
                spec_result = dataset.query(self.QUERY, executor=executor)
                times.append(time.perf_counter() - started)
            times.sort()
            return times[len(times) // 2], spec_result

        try:
            disabled, off_rows = median_seconds(QueryExecutor())
            analyzing, on_rows = median_seconds(QueryExecutor(analyze=True))
            assert off_rows.rows == on_rows.rows
            assert disabled <= analyzing * 1.05 + 0.01
        finally:
            dataset.close()


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE + events
# ---------------------------------------------------------------------------

class TestExplainAnalyze:
    @pytest.mark.parametrize("generator,count", [
        (twitter, 250), (wos, 150), (sensors, 120)])
    def test_workload_sqlpp_suites_render_actuals(self, generator, count):
        dataset = Dataset.create(f"Obs{generator.__name__.split('.')[-1]}",
                                 StorageFormat.INFERRED, partitions=2)
        try:
            dataset.insert_all(generator.generate(count))
            dataset.flush_all()
            for name, text in generator.SQLPP.items():
                plain = dataset.explain(text)
                analyzed = dataset.explain(text, analyze=True)
                assert "ANALYZE" not in plain
                assert analyzed.startswith(plain.splitlines()[0])
                assert "ANALYZE (query executed)" in analyzed
                assert "actual rows" in analyzed
                assert "buffer cache" in analyzed
                assert "execution: wall" in analyzed, name
        finally:
            dataset.close()

    def test_analyze_populates_cardinality_and_operator_totals(self):
        dataset = _dataset("ObsCardDs", _employee_records(150), partitions=2)
        try:
            dataset.create_secondary_index("by_age", ("age",))
            executor = QueryExecutor(analyze=True)
            from repro.sqlpp import compile as compile_sqlpp

            compiled = compile_sqlpp(
                "SELECT e.name AS name FROM ObsCardDs AS e WHERE e.age < 22")
            result = executor.execute(dataset, compiled.spec)
            stats = result.stats
            assert stats.actual_matched_rows == len(result.rows)
            if stats.estimated_rows is not None:
                assert stats.cardinality_error >= 1.0
            totals = stats.operator_totals()
            assert totals[-1].operator == "PROJECT"
            assert totals[-1].rows_out == len(result.rows)
            assert totals[0].bytes_read == stats.bytes_read
        finally:
            dataset.close()

    def test_misestimate_emits_structured_warning(self, _clean_tracer, caplog):
        tracer = _clean_tracer
        tracer.enable()
        dataset = _dataset("ObsWarnDs", _employee_records(30))
        try:
            executor = QueryExecutor(analyze=True)
            stats = ExecutionStats(estimated_rows=1000.0, access_path="IndexProbe",
                                   index_name="by_age")
            stats.per_partition.append(PartitionStats(
                partition_id=0,
                operators=[OperatorStats("SELECT", rows_out=5),
                           OperatorStats("PROJECT", rows_out=5)]))
            before = get_registry().snapshot()
            with caplog.at_level(logging.WARNING, logger="repro.obs"):
                executor._measure_cardinality(dataset, stats)
            assert stats.actual_matched_rows == 5
            assert stats.cardinality_error > 10
            record = next(rec for rec in caplog.records
                          if CARDINALITY_MISESTIMATE in rec.getMessage())
            assert "error_factor" in record.getMessage()
            delta = metrics_delta(get_registry().snapshot(), before)
            assert delta["counters"][
                f"events_total{{event={CARDINALITY_MISESTIMATE}}}"] == 1
            assert tracer.events(CARDINALITY_MISESTIMATE)
        finally:
            dataset.close()

    def test_no_warning_inside_tolerance(self, _clean_tracer, caplog):
        dataset = _dataset("ObsQuietDs", _employee_records(30))
        try:
            executor = QueryExecutor(analyze=True)
            stats = ExecutionStats(estimated_rows=6.0)
            stats.per_partition.append(PartitionStats(
                partition_id=0,
                operators=[OperatorStats("SELECT", rows_out=5),
                           OperatorStats("PROJECT", rows_out=5)]))
            with caplog.at_level(logging.WARNING, logger="repro.obs"):
                executor._measure_cardinality(dataset, stats)
            assert stats.cardinality_error < 10
            assert not [rec for rec in caplog.records
                        if CARDINALITY_MISESTIMATE in rec.getMessage()]
        finally:
            dataset.close()


# ---------------------------------------------------------------------------
# metrics integration across the engine
# ---------------------------------------------------------------------------

class TestEngineMetrics:
    def test_layers_publish_into_one_registry(self):
        registry = get_registry()
        before = registry.snapshot()
        dataset = _dataset("ObsEngineDs", partitions=2, background=True)
        try:
            feed = DataFeed(dataset, per_partition_ingest=True)
            report = feed.run(twitter.generate(150))
            feed.close()
            dataset.query("SELECT VALUE count(*) FROM Tweets AS t")
            delta = metrics_delta(dataset.metrics_snapshot(), before)
            counters = delta["counters"]
            assert counters["lsm_flushes"] > 0
            assert counters["lsm_memtable_seals"] > 0
            assert counters["wal_records_appended"] >= 150
            assert counters["queries_executed"] == 1
            assert counters["scheduler_tasks_completed{kind=flush}"] > 0
            assert any(key.startswith("device_bytes_written") for key in counters)
            assert delta["histograms"]["query_wall_seconds"]["count"] == 1
            # the feed report carries its own (earlier) delta window — close()
            # flushes the remainder afterwards, so report <= final.
            assert 0 < report.metrics["counters"]["lsm_flushes"] <= counters["lsm_flushes"]
            json.dumps(report.to_dict())
        finally:
            dataset.close()
